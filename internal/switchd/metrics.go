package switchd

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// The switch's counters live on a telemetry.Registry (the cluster-wide one
// when telemetry is enabled, a private one otherwise), so the Stats/
// TaskStats accessors are views over the same numbers the exporters see —
// no call site can silently diverge from the monitoring plane.

// switchMetrics caches the switch-global instrument pointers so the
// per-packet path pays one atomic add per event, never a registry lookup.
type switchMetrics struct {
	forwarded       *telemetry.Counter
	unregisteredFwd *telemetry.Counter
	staleDropped    *telemetry.Counter
	dupPackets      *telemetry.Counter
	switchAcks      *telemetry.Counter
	swaps           *telemetry.Counter
	fetches         *telemetry.Counter
	clears          *telemetry.Counter
	crashes         *telemetry.Counter
	reboots         *telemetry.Counter
	droppedDown     *telemetry.Counter
	corruptDropped  *telemetry.Counter
	probes          *telemetry.Counter
	revocations     *telemetry.Counter

	// aaOccupancy tracks non-blank aggregator entries across all AAs:
	// +1 per reserved slot, decremented when a range is wiped.
	aaOccupancy *telemetry.Gauge
}

// taskEntry is one task's cumulative registry counters plus the base
// snapshot taken at the last region (re-)allocation. TaskStatsOf reports
// cumulative−base, preserving the historical "stats reset on AllocRegion"
// semantics while the registry export stays monotonic (the monitoring
// plane survives reboots; see Reboot).
type taskEntry struct {
	tuplesIn         *telemetry.Counter
	tuplesAggregated *telemetry.Counter
	tuplesConflicted *telemetry.Counter
	dataPackets      *telemetry.Counter
	ackedPackets     *telemetry.Counter
	forwardedPackets *telemetry.Counter

	base TaskStats // guarded by Switch.tasksMu
}

func (sw *Switch) initMetrics(sink telemetry.Sink) {
	reg := sink.Reg
	if reg == nil {
		// Private registry: Stats views keep working without cluster-wide
		// telemetry (unit tests, multirack per-TOR switches).
		reg = telemetry.NewRegistry()
	}
	sw.reg = reg
	sw.tr = sink.Tr
	sw.met = switchMetrics{
		forwarded:       reg.Counter("switchd.forwarded_pkts"),
		unregisteredFwd: reg.Counter("switchd.unregistered_fwd_pkts"),
		staleDropped:    reg.Counter("switchd.stale_dropped_pkts"),
		dupPackets:      reg.Counter("switchd.dup_pkts"),
		switchAcks:      reg.Counter("switchd.switch_acks"),
		swaps:           reg.Counter("switchd.swaps"),
		fetches:         reg.Counter("switchd.fetches"),
		clears:          reg.Counter("switchd.clears"),
		crashes:         reg.Counter("switchd.crashes"),
		reboots:         reg.Counter("switchd.reboots"),
		droppedDown:     reg.Counter("switchd.dropped_down_pkts"),
		corruptDropped:  reg.Counter("switchd.corrupt_dropped"),
		probes:          reg.Counter("switchd.probes_answered"),
		revocations:     reg.Counter("switchd.revocations"),
		aaOccupancy:     reg.Gauge("switchd.aa_occupancy"),
	}
	reg.GaugeFunc("switchd.free_rows", func() int64 { return int64(sw.rows.totalFree()) })
	reg.GaugeFunc("switchd.regions_active", func() int64 { return int64(len(sw.regions)) })
	reg.GaugeFunc("switchd.flows_registered", func() int64 { return int64(len(sw.flows)) })
	reg.GaugeFunc("switchd.epoch", func() int64 { return int64(sw.epoch) })
	reg.GaugeFunc("switchd.down", func() int64 {
		if sw.down {
			return 1
		}
		return 0
	})
}

// Registry exposes the switch's metric registry (the cluster registry when
// telemetry is enabled).
func (sw *Switch) Registry() *telemetry.Registry { return sw.reg }

// taskEntryOf returns the task's instrument bundle, creating it on first
// use. The read path is an RLock so ingress and concurrent TaskStatsOf
// readers do not serialize.
func (sw *Switch) taskEntryOf(task core.TaskID) *taskEntry {
	sw.tasksMu.RLock()
	te := sw.tasks[task]
	sw.tasksMu.RUnlock()
	if te != nil {
		return te
	}
	sw.tasksMu.Lock()
	defer sw.tasksMu.Unlock()
	if te = sw.tasks[task]; te != nil {
		return te
	}
	labels := []telemetry.Label{telemetry.L("task", strconv.FormatUint(uint64(task), 10))}
	if tn := task.Tenant(); tn != 0 {
		// Multi-tenant fabrics slice every per-task series by tenant too;
		// untenanted tasks keep the exact single-label identity they always
		// had (metric-name goldens stay byte-identical).
		labels = append(labels, telemetry.L("tenant", strconv.FormatUint(uint64(tn), 10)))
	}
	te = &taskEntry{
		tuplesIn:         sw.reg.Counter("switchd.tuples_in", labels...),
		tuplesAggregated: sw.reg.Counter("switchd.tuples_aggregated", labels...),
		tuplesConflicted: sw.reg.Counter("switchd.tuples_conflicted", labels...),
		dataPackets:      sw.reg.Counter("switchd.data_pkts", labels...),
		ackedPackets:     sw.reg.Counter("switchd.acked_pkts", labels...),
		forwardedPackets: sw.reg.Counter("switchd.forwarded_data_pkts", labels...),
	}
	sw.tasks[task] = te
	return te
}

// cumulative reads the entry's monotonic counters.
func (te *taskEntry) cumulative() TaskStats {
	return TaskStats{
		TuplesIn:         te.tuplesIn.Value(),
		TuplesAggregated: te.tuplesAggregated.Value(),
		TuplesConflicted: te.tuplesConflicted.Value(),
		DataPackets:      te.dataPackets.Value(),
		AckedPackets:     te.ackedPackets.Value(),
		ForwardedPackets: te.forwardedPackets.Value(),
	}
}

func sub(a, b TaskStats) TaskStats {
	return TaskStats{
		TuplesIn:         a.TuplesIn - b.TuplesIn,
		TuplesAggregated: a.TuplesAggregated - b.TuplesAggregated,
		TuplesConflicted: a.TuplesConflicted - b.TuplesConflicted,
		DataPackets:      a.DataPackets - b.DataPackets,
		AckedPackets:     a.AckedPackets - b.AckedPackets,
		ForwardedPackets: a.ForwardedPackets - b.ForwardedPackets,
	}
}

// resetTaskStats rebases the task's view counters at the current
// cumulative values: TaskStatsOf starts over at zero while the registry
// export stays monotonic.
func (sw *Switch) resetTaskStats(task core.TaskID) {
	te := sw.taskEntryOf(task)
	sw.tasksMu.Lock()
	te.base = te.cumulative()
	sw.tasksMu.Unlock()
}

// clearAARange zeroes rows [lo,hi) of every AA, keeping the occupancy
// gauge consistent by counting the non-blank entries wiped. Control-plane
// only — never on the per-packet path.
func (sw *Switch) clearAARange(lo, hi int) {
	n := uint(8 * sw.cfg.KPartBytes)
	var wiped int64
	for _, aa := range sw.raAAs {
		for row := lo; row < hi; row++ {
			if aa.ControlRead(row)>>n != 0 {
				wiped++
			}
		}
		aa.ControlFill(lo, hi, 0)
	}
	sw.met.aaOccupancy.Add(-wiped)
}
