package switchd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/wire"
)

// Switch failure and recovery (failure model, README "Failure model"):
//
// The switch carries an epoch — an incarnation counter starting at 1 —
// stamped into every non-data packet it emits or forwards. A crash turns the
// switch into a black hole; a reboot clears every register array and
// control-plane table (flows, regions, row allocator) and advances the
// epoch. Hosts observe the silence via probe timeouts and the new
// incarnation via the epoch stamped in ACKs and probe replies, then
// re-attach: flows re-register at their current sequence position via
// RegisterFlowAt and receivers re-allocate regions.
//
// Per-task AA-region revocation is the softer failure: the region stops
// aggregating (packets stream through to the receiver with their liveness
// bitmaps intact — the host-only path) but its memory stays readable so the
// receiver can drain already-absorbed tuples exactly before freeing it.

// Epoch returns the switch's current incarnation number.
func (sw *Switch) Epoch() uint32 { return sw.epoch }

// Down reports whether the switch is crashed.
func (sw *Switch) Down() bool { return sw.down }

// Crash takes the switch down: every subsequent frame is silently dropped
// until Reboot. Register and control-plane state become irrelevant — a
// reboot will wipe them — but are left in place so tests can inspect the
// pre-crash state.
func (sw *Switch) Crash() {
	sw.down = true
	sw.met.crashes.Inc()
	sw.tr.Emit(telemetry.CompSwitchd, "crash", 0, int64(sw.epoch), 0)
}

// Reboot brings a crashed (or live) switch back up as a fresh incarnation:
// the epoch advances and ALL data-plane registers and control-plane tables
// are reset, exactly as a power cycle of a physical switch would. Per-task
// telemetry (TaskStatsOf) survives — it models the monitoring plane, not
// switch SRAM.
func (sw *Switch) Reboot() {
	sw.down = false
	sw.epoch++
	sw.met.reboots.Inc()
	sw.tr.Emit(telemetry.CompSwitchd, "epoch_change", 0, int64(sw.epoch), 0)

	w := sw.cfg.Window
	sw.raMaxSeq.ControlFill(0, sw.opts.MaxFlows, 0)
	sw.raSwapSeq.ControlFill(0, sw.opts.MaxRegions, 0)
	sw.raClearSeq.ControlFill(0, sw.opts.MaxRegions, 0)
	sw.raCopyInd.ControlFill(0, sw.opts.MaxRegions, 0)
	sw.raSeen.ControlFill(0, sw.opts.MaxFlows*w, 0)
	sw.raPktState.ControlFill(0, sw.opts.MaxFlows*w, 0)
	for _, aa := range sw.raAAs {
		aa.ControlFill(0, sw.cfg.AARows, 0)
	}
	sw.met.aaOccupancy.Set(0)

	sw.flows = make(map[core.FlowKey]int)
	sw.nextFlow = 0
	sw.regions = make(map[core.TaskID]*Region)
	sw.regionFree = sw.regionFree[:0]
	for i := sw.opts.MaxRegions - 1; i >= 0; i-- {
		sw.regionFree = append(sw.regionFree, i)
	}
	sw.rows = newRowAllocator(sw.cfg.AARows)
}

// SetEpoch installs a controller-assigned incarnation number. Multi-switch
// fabrics share one fabric-wide epoch: any switch outage (crash or reboot)
// advances it, and the fabric controller pushes the new value into every
// live switch so hosts observe a single coherent incarnation sequence no
// matter which switch stamps their packets. The epoch only moves forward;
// an older or equal value is ignored.
//
// Like a reboot, the new incarnation invalidates the flow reliability
// plane: registrations and their registers (max_seq, seen, PktState) are
// wiped, and every flow must re-register (RegisterFlowAt) before this
// switch absorbs its tuples again. This is what keeps the sender-side
// absorbEpoch bookkeeping sound across a bump (historyRec): if surviving
// registrations outlived the epoch, a not-yet-recovered sender's packets
// could be absorbed into a region re-allocated under the NEW incarnation
// while its history records still carry the old registration epoch — the
// later replay would re-deliver those tuples on top of the teardown fetch
// (double count). Unlike Reboot, regions and aggregator state are NOT
// wiped here; the controller separately frees the regions whose absorbed
// tuples the epoch bump consigns to sender replay.
func (sw *Switch) SetEpoch(e uint32) {
	if !window.SeqLess(sw.epoch, e) {
		return
	}
	sw.epoch = e
	w := sw.cfg.Window
	sw.raMaxSeq.ControlFill(0, sw.opts.MaxFlows, 0)
	sw.raSeen.ControlFill(0, sw.opts.MaxFlows*w, 0)
	sw.raPktState.ControlFill(0, sw.opts.MaxFlows*w, 0)
	sw.flows = make(map[core.FlowKey]int)
	sw.nextFlow = 0
	sw.tr.Emit(telemetry.CompSwitchd, "epoch_change", 0, int64(e), 0)
}

// RegisterFlowAt registers a data-channel flow whose next sequence number is
// start — the re-attach path after a reboot, where a flow's window is
// mid-stream rather than at zero. The flow's reliability registers are
// initialized so that start and everything after it is classified fresh:
//
//   - max_seq := start−1 (serial arithmetic; correct even for start == 0);
//   - each compact-seen bit is prepared for the parity of the first segment
//     that will touch it (NewCompactSeenAt's invariant, §3.3 Eq. 8);
//   - the PktState store is zeroed.
func (sw *Switch) RegisterFlowAt(fk core.FlowKey, start uint32) (int, error) {
	idx, err := sw.RegisterFlow(fk)
	if err != nil {
		return 0, err
	}
	w := sw.cfg.Window
	sw.raMaxSeq.ControlWrite(idx, uint64(uint32(start-1)))
	r0 := int(start) & (w - 1)
	odd0 := (start/uint32(w))&1 == 1
	prepared := func(odd bool) uint64 {
		if odd {
			return 1
		}
		return 0
	}
	for r := 0; r < w; r++ {
		bit := prepared(!odd0)
		if r >= r0 {
			bit = prepared(odd0)
		}
		sw.raSeen.ControlWrite(idx*w+r, bit)
		sw.raPktState.ControlWrite(idx*w+r, 0)
	}
	return idx, nil
}

// RevokeRegion disables aggregation for a task's region without freeing it:
// subsequent data packets stream through to the receiver untouched (the
// host-only path), while the region's aggregators stay readable so the
// receiver can fetch the already-absorbed tuples exactly once before
// releasing the rows with FreeRegion. This models the controller reclaiming
// AA capacity from a tenant under memory pressure (cf. P4COM's fallback to
// host processing).
func (sw *Switch) RevokeRegion(task core.TaskID) error {
	r, ok := sw.regions[task]
	if !ok {
		return fmt.Errorf("switchd: task %d has no region to revoke", task)
	}
	if !r.Revoked {
		r.Revoked = true
		sw.met.revocations.Inc()
		sw.tr.Emit(telemetry.CompSwitchd, "region_revoked", int64(task), 0, 0)
	}
	return nil
}

// processProbe answers a host's health probe with the switch's epoch. The
// probe is switch-terminated (like swap and fetch): the reply goes straight
// back to the prober.
func (sw *Switch) processProbe(f *netsim.Frame) {
	pkt := f.Pkt
	reply := &wire.Packet{
		Type: wire.TypeProbeReply,
		Task: pkt.Task,
		Flow: pkt.Flow,
		Seq:  pkt.Seq, // echo so the prober can match request/reply
	}
	sw.stamp(reply)
	sw.met.probes.Inc()
	sw.net.SwitchSend(&netsim.Frame{
		Src:       f.Dst,
		Dst:       f.Src,
		Pkt:       reply,
		WireBytes: reply.WireBytes(sw.cfg.KPartBytes),
		Owned:     true,
	})
	f.Release() // probe is switch-terminated
}
