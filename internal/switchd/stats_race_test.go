package switchd

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestTaskStatsOfConcurrent hammers the per-task stats view from reader
// goroutines while the simulation goroutine drives ingress. Run under
// go test -race: before the stats moved onto registry-backed atomic
// counters, TaskStatsOf handed back a pointer the ingress path kept
// mutating, so any off-thread observer (a monitoring scraper, the ask
// driver reading a finished task while another task runs) raced.
func TestTaskStatsOfConcurrent(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 16)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ts := r.sw.TaskStatsOf(7)
				if ts.TuplesAggregated > ts.TuplesIn {
					t.Error("aggregated > in")
					return
				}
				_ = r.sw.Stats()
				_ = r.sw.Registry().Total("switchd.tuples_in")
			}
		}()
	}

	keys := []string{"aaaa", "bbbb", "cccc", "dddd"}
	for i := 0; i < 300; i++ {
		for _, k := range keys {
			r.send(r.packetize(7, []core.KV{{Key: k, Val: 1}}))
		}
	}
	stop.Store(true)
	wg.Wait()

	ts := r.sw.TaskStatsOf(7)
	if ts.TuplesIn != int64(300*len(keys)) {
		t.Fatalf("TuplesIn = %d, want %d", ts.TuplesIn, 300*len(keys))
	}
	// Re-allocation resets the task view (base subtraction) while the
	// underlying registry counters stay monotonic.
	if err := r.sw.FreeRegion(7); err != nil {
		t.Fatal(err)
	}
	r.mustAlloc(7, 16)
	if ts2 := r.sw.TaskStatsOf(7); ts2.TuplesIn != 0 {
		t.Fatalf("TaskStatsOf after re-alloc = %d, want 0 (reset view)", ts2.TuplesIn)
	}
	if total := r.sw.Registry().Total("switchd.tuples_in"); total != int64(300*len(keys)) {
		t.Fatalf("registry total = %d, want monotonic %d", total, 300*len(keys))
	}
}
