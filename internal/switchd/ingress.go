package switchd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/wire"
)

// HandleIngress implements netsim.SwitchHandler: the switch's per-packet
// entry point.
func (sw *Switch) HandleIngress(f *netsim.Frame) {
	if sw.down {
		// A crashed switch is a black hole: nothing is forwarded, nothing is
		// acknowledged. Hosts detect the silence via probe timeouts.
		sw.met.droppedDown.Inc()
		var task, seq int64
		if f.Pkt != nil {
			task, seq = int64(f.Pkt.Task), int64(f.Pkt.Seq)
		}
		sw.tr.Emit(telemetry.CompSwitchd, "drop_down", task, seq, 0)
		f.Release() // black-holed: the packet is unreferenced
		return
	}
	// End-to-end integrity check (§3.3 failure model): a frame damaged in
	// flight arrives as raw bytes. A checksum failure quarantines it — the
	// drop is indistinguishable from a loss to the sender, whose
	// retransmission recovers the tuples. This covers every ingress type,
	// including the TypeReplay failover bypass path.
	wasRaw := f.Pkt == nil && f.Raw != nil
	if wasRaw {
		pkt, err := sw.codec.Decode(f.Raw)
		if err != nil {
			sw.met.corruptDropped.Inc()
			sw.tr.EmitNote(telemetry.CompSwitchd, "corrupt_drop", 0, err.Error())
			return
		}
		// Only reachable with verification disabled (or an astronomically
		// unlikely CRC collision): the damaged bytes decoded to a packet.
		f.Pkt, f.Raw = pkt, nil
	}
	switch f.Pkt.Type {
	case wire.TypeData, wire.TypeLongKey, wire.TypeFin, wire.TypeReplay:
		sw.processFlowPacket(f)
	case wire.TypeSwap:
		if sw.opts.Addr != 0 && f.Dst != sw.opts.Addr {
			// Leaf/spine role: the swap is for another aggregation point on
			// the path (e.g. the receiver swapping its spine region through
			// this leaf) — pass it along instead of consuming it.
			sw.forward(f)
			return
		}
		sw.processSwap(f)
	case wire.TypeFetch:
		if sw.opts.Addr != 0 && f.Dst != sw.opts.Addr {
			sw.forward(f)
			return
		}
		sw.processFetch(f)
	case wire.TypeProbe:
		sw.processProbe(f)
	case wire.TypeAck, wire.TypeCtrl, wire.TypeFetchReply, wire.TypeProbeReply:
		sw.forward(f)
	default:
		if wasRaw {
			// Corruption forged an unknown type byte and verification let it
			// through: a real parser drops what it cannot dispatch.
			sw.met.corruptDropped.Inc()
			sw.tr.EmitNote(telemetry.CompSwitchd, "corrupt_drop", int64(f.Pkt.Task), "forged type")
			return
		}
		panic(fmt.Sprintf("switchd: unknown packet type %v", f.Pkt.Type))
	}
}

func (sw *Switch) forward(f *netsim.Frame) {
	sw.stamp(f.Pkt)
	sw.met.forwarded.Inc()
	sw.net.SwitchSend(f)
}

// stamp writes the switch's epoch into every non-data packet that leaves
// the switch (generated or forwarded). Data-bearing packets keep their
// liveness bitmap in the shared header bytes and carry no epoch.
func (sw *Switch) stamp(pkt *wire.Packet) {
	if pkt.Type == wire.TypeData || pkt.Type == wire.TypeReplay {
		return
	}
	pkt.Epoch = sw.epoch
}

// processFlowPacket runs the ASK pipeline for a sequenced flow packet
// (data, long-key, or FIN): the reliability stages always run; the AA
// stages run only for fresh data packets of tasks with a live region.
func (sw *Switch) processFlowPacket(f *netsim.Frame) {
	pkt := f.Pkt
	fi, registered := sw.flows[pkt.Flow]
	if !registered {
		// Unregistered flows get best-effort forwarding with no switch
		// reliability state; the host receiver still deduplicates.
		sw.met.unregisteredFwd.Inc()
		sw.forward(f)
		return
	}
	region := sw.regions[pkt.Task]
	w := uint32(sw.cfg.Window)

	ps := sw.pipe.Begin()

	// Stage 0: max_seq — advance and classify staleness (§3.3 corner case).
	stale := sw.raMaxSeq.RMW(ps, fi, func(cur uint64) (uint64, uint64) {
		cur32 := uint32(cur)
		if window.SeqLess(cur32, pkt.Seq) {
			return uint64(pkt.Seq), 0
		}
		if cur32-pkt.Seq >= w {
			return cur, 1
		}
		return cur, 0
	}) == 1
	if stale {
		sw.met.staleDropped.Inc()
		sw.tr.Emit(telemetry.CompSwitchd, "stale_drop", int64(pkt.Task), int64(pkt.Seq), 0)
		f.Release()
		return
	}

	// Stage 1: copy indicator (data packets of live regions) and seen.
	copyIdx := 0
	if region != nil && pkt.Type == wire.TypeData {
		copyIdx = int(sw.raCopyInd.RMW(ps, region.idx, func(cur uint64) (uint64, uint64) {
			return cur, cur
		}))
	}
	seenSlot := fi*sw.cfg.Window + int(pkt.Seq%w)
	var observed bool
	if sw.opts.SeqTaggedSeen {
		// Residual streams skip sequence numbers, so the parity seen would
		// alias; match the full tag instead (window.SeenTagUpdate).
		observed = sw.raSeen.RMW(ps, seenSlot, func(cur uint64) (uint64, uint64) {
			next, obs := window.SeenTagUpdate(cur, pkt.Seq)
			if obs {
				return next, 1
			}
			return next, 0
		}) == 1
	} else {
		odd := (pkt.Seq/w)&1 == 1
		observed = sw.raSeen.RMW(ps, seenSlot, func(cur uint64) (uint64, uint64) {
			next, obs := window.SeenUpdate(cur, odd)
			if obs {
				return next, 1
			}
			return next, 0
		}) == 1
	}

	// Stages 2..9: vectorized aggregation for fresh data packets. Replay
	// packets run the reliability stages but are never aggregated — their
	// tuples belong to the host-only bypass path — and revoked regions no
	// longer aggregate (the degradation ladder's host-only rung).
	if pkt.Type == wire.TypeData && !observed && region != nil && !region.Revoked {
		sw.aggregate(ps, pkt, region, copyIdx)
	}
	if pkt.Type == wire.TypeData && !observed {
		sw.taskEntryOf(pkt.Task).dataPackets.Inc()
	}

	// Stage 10: PktState — record on first appearance, restore on
	// retransmission (Eq. 9–10).
	psIdx := fi*sw.cfg.Window + int(pkt.Seq%w)
	if !observed {
		sw.raPktState.RMW(ps, psIdx, func(cur uint64) (uint64, uint64) {
			return uint64(pkt.Bitmap), 0
		})
	} else {
		sw.met.dupPackets.Inc()
		restored := sw.raPktState.RMW(ps, psIdx, func(cur uint64) (uint64, uint64) {
			return cur, cur
		})
		if pkt.Type == wire.TypeData {
			pkt.Bitmap = wire.Bitmap(restored)
		}
		// The compact-seen replay decision (§3.3): the restored PktState
		// bitmap decides which tuples the retransmission still carries.
		sw.tr.Emit(telemetry.CompSwitchd, "seen_replay", int64(pkt.Task), int64(pkt.Seq), int64(restored))
	}

	// Egress: a data packet whose tuples were all consumed is dropped and
	// acknowledged to the sender; anything else continues to the receiver.
	if pkt.Type == wire.TypeData && pkt.Bitmap.Empty() {
		sw.taskEntryOf(pkt.Task).ackedPackets.Inc()
		sw.sendAck(f, pkt)
		f.Release() // fully consumed: tuples live in the AAs, packet is done
		return
	}
	sw.taskEntryOf(pkt.Task).forwardedPackets.Inc()
	sw.forward(f)
}

// aggregate runs the AA stages for one packet: each logical tuple unit
// (short slot or medium group) is matched against its AA(s); consumed
// tuples have their bitmap bits cleared (§3.2.1).
func (sw *Switch) aggregate(ps *pisaPass, pkt *wire.Packet, region *Region, copyIdx int) {
	ts := sw.taskEntryOf(pkt.Task)
	rowBase := region.Lo + copyIdx*region.CopyRows
	if region.Copies == 1 {
		rowBase = region.Lo
	}

	// Short slots: one AA each. A partitioned region (multi-tenant) only
	// owns its band of slots; the zero partition scans the whole packet
	// exactly as the single-tenant switch always has.
	shortSlots := sw.layout.ShortSlots()
	sLo, sHi := 0, shortSlots
	gLo, gHi := 0, sw.cfg.MediumGroups
	if !region.Partition.IsZero() {
		sLo, sHi = region.Partition.ShortLo, region.Partition.ShortLo+region.Partition.ShortWidth
		gLo, gHi = region.Partition.GroupLo, region.Partition.GroupLo+region.Partition.GroupWidth
	}
	for i := sLo; i < sHi && i < len(pkt.Slots); i++ {
		if !pkt.Bitmap.Test(i) {
			continue
		}
		ts.tuplesIn.Inc()
		row := rowBase + int(rowHash(pkt.Slots[i].KPart)%uint64(region.CopyRows))
		if sw.slotRMW(ps, sw.raAAs[i], row, pkt.Slots[i], region.Op, true) {
			pkt.Bitmap = pkt.Bitmap.Clear(i)
			ts.tuplesAggregated.Inc()
		} else {
			ts.tuplesConflicted.Inc()
		}
	}

	// Medium groups: m adjacent AAs with a unified row index. The value
	// rides in the last member; earlier members carry (segment, 0).
	m := sw.cfg.MediumSegs
	for g := gLo; g < gHi; g++ {
		first := shortSlots + g*m
		if first >= len(pkt.Slots) {
			break
		}
		if !pkt.Bitmap.Test(first) {
			continue
		}
		ts.tuplesIn.Inc()
		kparts := make([]uint64, m)
		for j := 0; j < m; j++ {
			kparts[j] = pkt.Slots[first+j].KPart
		}
		row := rowBase + int(rowHash(kparts...)%uint64(region.CopyRows))
		ok := true
		for j := 0; j < m; j++ {
			slot := pkt.Slots[first+j]
			last := j == m-1
			// Members after a failed one are skipped; by the pairing
			// invariant a group either fully matches/reserves or fails at
			// its first conflicting member without partial writes.
			if ok {
				ok = sw.slotRMW(ps, sw.raAAs[first+j], row, slot, region.Op, last)
			}
		}
		if ok {
			for j := 0; j < m; j++ {
				pkt.Bitmap = pkt.Bitmap.Clear(first + j)
			}
			ts.tuplesAggregated.Inc()
		} else {
			ts.tuplesConflicted.Inc()
		}
	}
}

// slotRMW performs one aggregator register action: match-or-reserve the key
// part, and fold the value if applyVal. It reports success.
func (sw *Switch) slotRMW(ps *pisaPass, aa *pisaArray, row int, slot wire.Slot, op core.Op, applyVal bool) bool {
	kp := sw.kPartN(slot.KPart)
	n := uint(8 * sw.cfg.KPartBytes)
	reserved := false
	ok := aa.RMW(ps, row, func(cur uint64) (uint64, uint64) {
		curKP := cur >> n
		curV := cur & sw.nMask()
		switch {
		case curKP == 0: // blank: reserve
			reserved = true
			v := uint64(0)
			if applyVal {
				v = sw.encodeVal(op.Apply(op.Identity(), slot.Val))
			}
			return kp<<n | v, 1
		case curKP == kp: // match: fold
			v := curV
			if applyVal {
				v = sw.encodeVal(op.Apply(sw.decodeVal(curV), slot.Val))
			}
			return kp<<n | v, 1
		default: // conflict
			return cur, 0
		}
	})
	if reserved {
		sw.met.aaOccupancy.Add(1)
	}
	return ok == 1
}

// sendAck emits a switch-generated ACK back to the packet's sender with the
// same sequence number (§3.2.1). The ACK packet comes from the wire free
// list and its frame is owned: the receiving host releases it after the
// window bookkeeping, so steady-state acking recycles a handful of packets.
func (sw *Switch) sendAck(f *netsim.Frame, pkt *wire.Packet) {
	ack := wire.NewPacket()
	ack.Type = wire.TypeAck
	ack.AckFor = pkt.Type
	ack.Task = pkt.Task
	ack.Flow = pkt.Flow
	ack.Seq = pkt.Seq
	sw.stamp(ack)
	sw.met.switchAcks.Inc()
	sw.net.SwitchSend(&netsim.Frame{
		Src:       f.Dst, // on behalf of the receiver's address
		Dst:       pkt.Flow.Host,
		Pkt:       ack,
		WireBytes: ack.WireBytes(sw.cfg.KPartBytes),
		Owned:     true,
	})
}

// processSwap flips a region's copy indicator exactly once per swap sequence
// number (§3.4 Switch()) and acknowledges the receiver.
func (sw *Switch) processSwap(f *netsim.Frame) {
	pkt := f.Pkt
	region := sw.regions[pkt.Task]
	if region != nil {
		ps := sw.pipe.Begin()
		// Stage 0: swap_seq decides whether this notification is new.
		fresh := sw.raSwapSeq.RMW(ps, region.idx, func(cur uint64) (uint64, uint64) {
			if uint32(cur)+1 == pkt.Seq {
				return uint64(pkt.Seq), 1
			}
			return cur, 0
		}) == 1
		// Stage 1: conditional atomic flip of the copy indicator.
		if fresh {
			sw.raCopyInd.RMW(ps, region.idx, func(cur uint64) (uint64, uint64) {
				return cur ^ 1, 0
			})
			sw.met.swaps.Inc()
			sw.tr.Emit(telemetry.CompSwitchd, "shadow_swap", int64(pkt.Task), int64(pkt.Seq), 0)
		}
	}
	ack := wire.NewPacket()
	ack.Type = wire.TypeAck
	ack.AckFor = wire.TypeSwap
	ack.Task = pkt.Task
	ack.Flow = pkt.Flow
	ack.Seq = pkt.Seq
	sw.stamp(ack)
	sw.net.SwitchSend(&netsim.Frame{
		Src:       f.Dst,
		Dst:       f.Src,
		Pkt:       ack,
		WireBytes: ack.WireBytes(sw.cfg.KPartBytes),
		Owned:     true,
	})
	f.Release() // swap is switch-terminated: the request packet is done
}

// ActiveCopy returns the region's current write copy (for tests).
func (sw *Switch) ActiveCopy(task core.TaskID) int {
	r := sw.regions[task]
	if r == nil {
		return -1
	}
	return int(sw.raCopyInd.ControlRead(r.idx))
}
