package chaos

// Fabric soak: seeded random-walk fault schedules over a multi-tenant
// fat-tree, mixing addressed switch-tier outages (one spine or one leaf at
// a time) with the rack soak's link faults (black-holes, corruption
// bursts), replayed against per-tenant analytic ground truth.
//
// The harness shares the rack soak's shape: GenerateFabricSchedule draws a
// script on the millis-of-scale timeline, RunFabricSchedule replays it on a
// fresh fabric and checks the invariants, and on a violation the shared
// ShrinkWith minimizer elides events until every survivor is load-bearing.
// The reproducer line carries the topology flags (-topology fattree,
// -soak.spines, -soak.leaves) so a fat-tree failure replays verbatim from
// the command line.
//
// Invariants checked at quiescence:
//
//  1. Conservation, per tenant: each task's result equals its host-computed
//     ground truth — no tuple lost to an outage, none double-counted by
//     replay across a spine re-election or leaf heal.
//  2. Recovery: every fault healed, so no host is still degraded.
//  3. Epoch coherence: the fabric epoch is 1 + 2x the number of switch
//     outages in the script (each crash and each reboot bumps it once),
//     every switch has converged on it, and no host is ahead of it.
//  4. Transport sanity: no aborts under the unbounded retry budget, and no
//     channel ACKed more than it sent.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// FabricSoakConfig parameterizes one fat-tree soak. Everything is derived
// from Seed; equal configs replay identically.
type FabricSoakConfig struct {
	// Seed drives the workloads, the schedule draw, and the fabric's fault
	// RNG.
	Seed int64
	// Events is the number of fault events to draw (default 6).
	Events int
	// Spines and Leaves size the fabric (defaults 2 and 3: receivers on
	// leaf 0, senders on every other leaf, so every task has cross-leaf
	// residue for the spine tier).
	Spines int
	Leaves int
	// Tenants is the number of concurrent tenants (default 2), each with
	// weight 1, one host per leaf, and one fabric-spanning task.
	Tenants int
	// Tuples per sender (default 20 000) over Keys distinct keys
	// (default 512).
	Tuples int64
	Keys   int
	// Base is a fault model applied to every host link for the whole run,
	// on top of the scheduled events.
	Base netsim.Fault
	// Shards, when > 1, runs the fabric on the conservative parallel
	// scheduler (ask.FatTreeOptions.Shards): the soak then additionally
	// proves that failover epochs, replay, and conservation survive
	// parallel execution and its control rendezvous.
	Shards int
}

func (c FabricSoakConfig) withDefaults() FabricSoakConfig {
	if c.Events == 0 {
		c.Events = 6
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.Leaves == 0 {
		c.Leaves = 3
	}
	if c.Tenants == 0 {
		c.Tenants = 2
	}
	if c.Tuples == 0 {
		c.Tuples = 20_000
	}
	if c.Keys == 0 {
		c.Keys = 512
	}
	return c
}

// fabricSoakOptions is the fabric under test: failover on (outages must not
// deadlock), shadow copies off (failover replay cannot attribute swap
// fetches), retries unbounded (an outage window must be bridged, not
// aborted — an abort is an invariant violation, not a scripted outcome).
func fabricSoakOptions(cfg FabricSoakConfig) ask.FatTreeOptions {
	c := core.DefaultConfig()
	c.ShadowCopy = false
	c.Failover = true
	c.MaxRetries = 0
	link := netsim.DefaultLinkConfig()
	link.Fault = cfg.Base
	opts := ask.FatTreeOptions{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: cfg.Tenants,
		Config: c, HostLink: link, Seed: cfg.Seed, Shards: cfg.Shards,
	}
	for i := 0; i < cfg.Tenants; i++ {
		opts.Tenants = append(opts.Tenants, tenancy.TenantSpec{ID: core.TenantID(i + 1), Weight: 1})
	}
	return opts
}

// fabricTaskPlan is one tenant's fabric-spanning task: receiver on leaf 0,
// one sender on every other leaf, and the host-computed ground truth.
type fabricTaskPlan struct {
	tenant  core.TenantID
	spec    core.TaskSpec
	streams map[core.HostID]core.Stream
	want    core.Result
}

func fabricSoakWorkload(cfg FabricSoakConfig, opts ask.FatTreeOptions) []fabricTaskPlan {
	plans := make([]fabricTaskPlan, 0, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		tn := core.TenantID(i + 1)
		pl := fabricTaskPlan{
			tenant:  tn,
			streams: make(map[core.HostID]core.Stream),
			want:    make(core.Result),
			spec: core.TaskSpec{
				ID:       core.MakeTaskID(tn, uint32(i+1)),
				Receiver: opts.HostAt(0, i),
				Op:       core.OpSum,
			},
		}
		for l := 1; l < cfg.Leaves; l++ {
			h := opts.HostAt(l, i)
			pl.spec.Senders = append(pl.spec.Senders, h)
			w := workload.Uniform(cfg.Keys, cfg.Tuples, cfg.Seed+int64(i*cfg.Leaves+l))
			pl.streams[h] = w.Stream()
			pl.want.Merge(w.Reference(core.OpSum), core.OpSum)
		}
		plans = append(plans, pl)
	}
	return plans
}

// GenerateFabricSchedule draws a fat-tree fault script from cfg.Seed.
// Constraints keep every draw runnable: switch-tier outages (spine or leaf)
// never overlap each other — so the fabric always has a heal window between
// incarnation bumps — per-host faults never overlap on the same host, and
// only sender hosts are targeted. Events land in [50, 900) millis of scale
// with durations in [50, 250), so every fault heals within the script.
func GenerateFabricSchedule(cfg FabricSoakConfig) Schedule {
	cfg = cfg.withDefaults()
	opts := fabricSoakOptions(cfg)
	kinds := []EventKind{EvSpineOutage, EvLeafOutage, EvLinkBlackhole, EvCorruptBurst}
	var senders []core.HostID
	for l := 1; l < cfg.Leaves; l++ {
		for i := 0; i < cfg.Tenants; i++ {
			senders = append(senders, opts.HostAt(l, i))
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sched Schedule
	var outages [][2]int64
	busy := make(map[core.HostID][][2]int64)
	for attempts := 0; len(sched) < cfg.Events && attempts < cfg.Events*64; attempts++ {
		kind := kinds[rng.Intn(len(kinds))]
		start := 50 + rng.Int63n(850)
		dur := 50 + rng.Int63n(200)
		ev := Event{Kind: kind, StartMil: start, DurMil: dur}
		switch kind {
		case EvSpineOutage, EvLeafOutage:
			if kind == EvSpineOutage {
				ev.Addr = netsim.SpineAddr(rng.Intn(cfg.Spines))
			} else {
				ev.Addr = netsim.LeafAddr(rng.Intn(cfg.Leaves))
			}
			if overlapsAny(outages, start, start+dur) {
				continue
			}
			outages = append(outages, [2]int64{start, start + dur})
		default:
			host := senders[rng.Intn(len(senders))]
			if overlapsAny(busy[host], start, start+dur) {
				continue
			}
			busy[host] = append(busy[host], [2]int64{start, start + dur})
			ev.Host = host
			if kind == EvCorruptBurst {
				ev.Fault = netsim.Fault{
					CorruptProb:  0.002 + rng.Float64()*0.02,
					TruncateProb: rng.Float64() * 0.004,
				}
			}
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].StartMil < sched[j].StartMil })
	return sched
}

// RunFabricSchedule replays one schedule on a fresh fat-tree and checks the
// invariants. Deterministic: equal (cfg, sched, scale) triples produce
// equal Outcomes.
func RunFabricSchedule(cfg FabricSoakConfig, sched Schedule, scale time.Duration) Outcome {
	cfg = cfg.withDefaults()
	opts := fabricSoakOptions(cfg)
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return violationf("fabric build failed: %v", err)
	}
	plans := fabricSoakWorkload(cfg, opts)
	orch := NewFabric(fc)
	sched.Apply(orch, scale)
	pending := make(map[core.TenantID]*ask.FatTreePendingTask)
	for _, pl := range plans {
		pt, err := fc.StartTask(pl.spec, pl.streams)
		if err != nil {
			return violationf("tenant %d submission failed: %v", pl.tenant, err)
		}
		pending[pl.tenant] = pt
	}
	// Same virtual-time cap as the rack soak: every fault heals by 1.15x
	// scale, so 25x is far beyond any legitimate recovery tail.
	deadline := sim.Time(0).Add(25 * scale)
	end := fc.Sim.Run(deadline)

	var out Outcome
	// Invariant 1 — conservation, per tenant.
	for _, pl := range plans {
		res, err := pending[pl.tenant].Get()
		if err != nil {
			if end >= deadline {
				return violationf("tenant %d still running at virtual-time cap %v (livelock)", pl.tenant, 25*scale)
			}
			return violationf("tenant %d task did not complete: %v", pl.tenant, err)
		}
		if !res.Result.Equal(pl.want) {
			out.Violation = fmt.Sprintf("tenant %d conservation violated: %s", pl.tenant, res.Result.Diff(pl.want, 5))
			return out
		}
		if d := time.Duration(res.Elapsed); d > out.Elapsed {
			out.Elapsed = d
		}
	}
	for _, sw := range fc.Leaves {
		out.SwitchCorruptDropped += sw.Stats().CorruptDropped
	}
	for _, sw := range fc.Spines {
		out.SwitchCorruptDropped += sw.Stats().CorruptDropped
	}
	hosts := make([]core.HostID, 0, cfg.Leaves*cfg.Tenants)
	for l := 0; l < cfg.Leaves; l++ {
		for i := 0; i < cfg.Tenants; i++ {
			hosts = append(hosts, opts.HostAt(l, i))
		}
	}
	for _, h := range hosts {
		d := fc.Daemon(h)
		out.HostCorruptDropped += d.Stats().CorruptDropped
		out.Replays += d.FailoverStats().ReplaysSent
		for _, cs := range d.ChannelStats() {
			out.Retransmits += cs.Retransmits
		}
	}
	// Invariant 2 — recovery: every fault healed, so no host may still be
	// degraded once the fabric quiesces.
	for _, h := range hosts {
		if fc.Daemon(h).Degraded() {
			out.Violation = fmt.Sprintf("host %d still degraded at quiescence", h)
			return out
		}
	}
	// Invariant 3 — epoch coherence: each switch outage bumps the fabric
	// epoch twice (crash and reboot), every switch converges on the final
	// incarnation, and no host believes in a future one.
	outages := 0
	for _, ev := range sched {
		if ev.Kind == EvSpineOutage || ev.Kind == EvLeafOutage {
			outages++
		}
	}
	wantEpoch := uint32(1 + 2*outages)
	if got := fc.FabricEpoch(); got != wantEpoch {
		out.Violation = fmt.Sprintf("fabric epoch %d != 1+2x%d outages = %d", got, outages, wantEpoch)
		return out
	}
	for l, sw := range fc.Leaves {
		if got := sw.Epoch(); got != wantEpoch {
			out.Violation = fmt.Sprintf("leaf %d epoch %d != fabric epoch %d", l, got, wantEpoch)
			return out
		}
	}
	for s, sw := range fc.Spines {
		if got := sw.Epoch(); got != wantEpoch {
			out.Violation = fmt.Sprintf("spine %d epoch %d != fabric epoch %d", s, got, wantEpoch)
			return out
		}
	}
	for _, h := range hosts {
		if he := fc.Daemon(h).Epoch(); he > wantEpoch {
			out.Violation = fmt.Sprintf("host %d epoch %d ahead of fabric epoch %d", h, he, wantEpoch)
			return out
		}
	}
	// Invariant 4 — transport sanity: with an unbounded retry budget no
	// flight may abort, and no channel may ACK more than it sent.
	for _, h := range hosts {
		for ch, cs := range fc.Daemon(h).ChannelStats() {
			if cs.Aborts != 0 {
				out.Violation = fmt.Sprintf("host %d channel %d aborted %d flights under unbounded retries", h, ch, cs.Aborts)
				return out
			}
			if cs.Acked > cs.Sent {
				out.Violation = fmt.Sprintf("host %d channel %d acked %d > sent %d", h, ch, cs.Acked, cs.Sent)
				return out
			}
		}
	}
	return out
}

// FabricGoldenScale runs the multi-tenant workload once fault-free and
// returns the slowest tenant's duration — the schedule's timing scale for
// RunFabricSchedule. It returns an error if the fabric cannot be built or
// even the clean run violates conservation (a harness bug, not a fault).
func FabricGoldenScale(cfg FabricSoakConfig) (time.Duration, error) {
	cfg = cfg.withDefaults()
	opts := fabricSoakOptions(cfg)
	opts.HostLink.Fault = netsim.Fault{}
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return 0, err
	}
	plans := fabricSoakWorkload(cfg, opts)
	pending := make(map[core.TenantID]*ask.FatTreePendingTask)
	for _, pl := range plans {
		pt, err := fc.StartTask(pl.spec, pl.streams)
		if err != nil {
			return 0, fmt.Errorf("chaos: golden fabric run failed to submit: %w", err)
		}
		pending[pl.tenant] = pt
	}
	fc.Sim.Run(0)
	var scale time.Duration
	for _, pl := range plans {
		res, err := pending[pl.tenant].Get()
		if err != nil {
			return 0, fmt.Errorf("chaos: golden fabric run failed: %w", err)
		}
		if !res.Result.Equal(pl.want) {
			return 0, fmt.Errorf("chaos: golden fabric run violates conservation: %s", res.Result.Diff(pl.want, 5))
		}
		if d := time.Duration(res.Elapsed); d > scale {
			scale = d
		}
	}
	return scale, nil
}

// FabricReport is the full record of one fabric soak.
type FabricReport struct {
	Cfg      FabricSoakConfig
	Scale    time.Duration
	Schedule Schedule
	Outcome  Outcome
	// Shrunk is the minimal failing schedule (nil when the soak passed;
	// possibly empty when the base config alone fails).
	Shrunk Schedule
	// Runs is the total number of schedule replays, shrinking included.
	Runs int
}

// Passed reports whether every invariant held on the full schedule.
func (r FabricReport) Passed() bool { return r.Outcome.OK() }

// Reproducer is the one-line command that replays this exact soak,
// topology flags included.
func (r FabricReport) Reproducer() string {
	s := fmt.Sprintf("asksim -soak -topology fattree -soak.seed=%d -soak.events=%d -soak.spines=%d -soak.leaves=%d -soak.tuples=%d",
		r.Cfg.Seed, r.Cfg.Events, r.Cfg.Spines, r.Cfg.Leaves, r.Cfg.Tuples)
	if r.Cfg.Base.CorruptProb != 0 {
		s += fmt.Sprintf(" -soak.corrupt=%g", r.Cfg.Base.CorruptProb)
	}
	if r.Cfg.Shards > 1 {
		s += fmt.Sprintf(" -soak.shards=%d", r.Cfg.Shards)
	}
	return s
}

func (r FabricReport) String() string {
	var b strings.Builder
	if r.Passed() {
		fmt.Fprintf(&b, "fabric soak seed=%d PASS: %d events over %v (%d spines, %d leaves, %d tenants), elapsed %v\n",
			r.Cfg.Seed, len(r.Schedule), r.Scale, r.Cfg.Spines, r.Cfg.Leaves, r.Cfg.Tenants, r.Outcome.Elapsed)
		fmt.Fprintf(&b, "  evidence: corrupt_dropped switch=%d host=%d, retransmits=%d, replays=%d\n",
			r.Outcome.SwitchCorruptDropped, r.Outcome.HostCorruptDropped,
			r.Outcome.Retransmits, r.Outcome.Replays)
		return b.String()
	}
	fmt.Fprintf(&b, "fabric soak seed=%d FAIL: %s\n", r.Cfg.Seed, r.Outcome.Violation)
	fmt.Fprintf(&b, "minimal failing schedule (%d of %d events, %d replays):\n",
		len(r.Shrunk), len(r.Schedule), r.Runs)
	fmt.Fprintf(&b, "%s\n", r.Shrunk)
	fmt.Fprintf(&b, "reproduce with: %s\n", r.Reproducer())
	return b.String()
}

// FabricSoak runs one full fat-tree soak for cfg: golden timing run,
// schedule generation, replay, and — on violation — shrinking via the
// shared ShrinkWith minimizer. The only error return is a golden-run
// failure; fault-induced violations are reported in the FabricReport,
// reproducer included.
func FabricSoak(cfg FabricSoakConfig) (FabricReport, error) {
	cfg = cfg.withDefaults()
	scale, err := FabricGoldenScale(cfg)
	if err != nil {
		return FabricReport{}, err
	}
	sched := GenerateFabricSchedule(cfg)
	rep := FabricReport{Cfg: cfg, Scale: scale, Schedule: sched}
	rep.Outcome = RunFabricSchedule(cfg, sched, scale)
	rep.Runs = 1
	if !rep.Outcome.OK() {
		shrunk, runs := ShrinkWith(func(s Schedule) bool {
			return !RunFabricSchedule(cfg, s, scale).OK()
		}, sched)
		rep.Shrunk = shrunk
		rep.Runs += runs
	}
	return rep, nil
}
