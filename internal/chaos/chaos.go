// Package chaos is the fault-injection orchestrator for the simulated ASK
// deployments: it schedules scripted failures — switch crashes and reboots
// (addressed, so a fat-tree script can target one spine or leaf), per-task
// AA-region revocations, link black-holes and degradations, host daemon
// stalls — on the deterministic virtual clock, so every chaos run is exactly
// reproducible for a given seed and script.
//
// The orchestrator is a thin scheduling layer over a Fabric (the rack's
// ask.Cluster or the spine/leaf ask.FatTreeCluster): each injected event is
// a named closure fired at an absolute virtual time via sim.At, and every
// firing is appended to a log that experiments and tests can assert
// against. Faults must heal within the script (a crash needs a matching
// reboot, a black-hole a matching clear), otherwise in-flight tasks cannot
// complete and the simulation will not quiesce.
package chaos

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/hostd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Fabric is the deployment surface the orchestrator injects faults into.
// Both ask.Cluster (single switch, address ask.TheSwitch) and
// ask.FatTreeCluster (switches at netsim.LeafAddr/SpineAddr) implement it.
type Fabric interface {
	// Simulation returns the deterministic virtual-time kernel faults are
	// scheduled on.
	Simulation() *sim.Simulation
	// TelemetrySet returns the cluster observability set (nil when
	// telemetry is disabled).
	TelemetrySet() *telemetry.Set
	// CrashSwitch / RebootSwitch address a switch by fabric address; they
	// return an error for an address that names no switch (a script bug).
	CrashSwitch(addr core.HostID) error
	RebootSwitch(addr core.HostID) error
	// HostUplink / HostDownlink expose a host's links for black-holes and
	// fault-model overrides.
	HostUplink(h core.HostID) *netsim.Link
	HostDownlink(h core.HostID) *netsim.Link
	// Daemon returns a host's daemon (stalls, stats).
	Daemon(h core.HostID) *hostd.Daemon
	// RevokeRegion reclaims a task's aggregator rows. Fabrics that cannot
	// drain a revoked region exactly-once (the fat-tree) return an error,
	// which the orchestrator treats as a no-op fault.
	RevokeRegion(task core.TaskID, receiver core.HostID) error
}

var (
	_ Fabric = (*ask.Cluster)(nil)
	_ Fabric = (*ask.FatTreeCluster)(nil)
)

// Record is one fired injection.
type Record struct {
	At   sim.Time
	Desc string
}

// Orchestrator schedules fault injections against one fabric.
type Orchestrator struct {
	fab Fabric
	log []Record
	// injections counts fired events (chaos.injections on the cluster
	// registry); tr mirrors every firing into the trace ring. Both are
	// nil-safe no-ops on an uninstrumented cluster.
	injections *telemetry.Counter
	tr         *telemetry.Tracer
}

// New wraps a rack cluster in an orchestrator. The cluster should run with
// Config.Failover on; injecting switch faults into a non-failover cluster
// deadlocks tasks whose state died with the switch.
func New(cl *ask.Cluster) *Orchestrator { return NewFabric(cl) }

// NewFabric wraps any deployment (rack or fat-tree) in an orchestrator;
// the same failover caveat as New applies.
func NewFabric(f Fabric) *Orchestrator {
	o := &Orchestrator{fab: f}
	if ts := f.TelemetrySet(); ts != nil && ts.Registry != nil {
		o.injections = ts.Registry.Counter("chaos.injections")
		o.tr = ts.Tracer
	}
	return o
}

// Fabric returns the deployment under test.
func (o *Orchestrator) Fabric() Fabric { return o.fab }

// Log returns the fired injections in firing order.
func (o *Orchestrator) Log() []Record { return o.log }

// At schedules fn at absolute virtual time d (an offset from t=0, which for
// the usual build-then-run flow is also cluster creation time). Events fire
// between simulation steps, never preempting a running process mid-yield.
func (o *Orchestrator) At(d time.Duration, desc string, fn func()) {
	t := sim.Time(0).Add(d)
	s := o.fab.Simulation()
	s.At(t, func() {
		o.log = append(o.log, Record{At: s.Now(), Desc: desc})
		o.injections.Inc()
		o.tr.EmitNote(telemetry.CompChaos, "inject", 0, desc)
		fn()
	})
}

// SwitchOutage crashes the switch at fabric address addr at `at` and
// reboots it downFor later: the switch loses all in-network aggregation
// state (registers, flows, regions) and every frame through it in the
// outage window is black-holed. Hosts detect the outage via probe timeouts
// or the advanced epoch, run degraded (host-only where no alternate
// aggregation point exists), and re-attach to the new incarnation after the
// reboot. On the rack addr must be ask.TheSwitch; on the fat-tree use
// netsim.LeafAddr / netsim.SpineAddr. An address naming no switch is a
// script bug and panics at firing time.
func (o *Orchestrator) SwitchOutage(addr core.HostID, at, downFor time.Duration) {
	o.At(at, fmt.Sprintf("switch crash addr=%#x", uint16(addr)), func() {
		if err := o.fab.CrashSwitch(addr); err != nil {
			panic(fmt.Sprintf("chaos: %v", err))
		}
	})
	o.At(at+downFor, fmt.Sprintf("switch reboot addr=%#x", uint16(addr)), func() {
		if err := o.fab.RebootSwitch(addr); err != nil {
			panic(fmt.Sprintf("chaos: %v", err))
		}
	})
}

// RevokeRegion reclaims a task's aggregator rows at `at`. The switch keeps
// forwarding the task's packets host-only; the receiver drains the absorbed
// partials exactly once and finishes without in-network help.
func (o *Orchestrator) RevokeRegion(at time.Duration, task core.TaskID, receiver core.HostID) {
	o.At(at, fmt.Sprintf("revoke region task=%d", task), func() {
		// The region can legitimately be gone already (task finished or a
		// reboot wiped it), or the fabric may not support single-point
		// revocation (the fat-tree); either way it is a no-op fault.
		_ = o.fab.RevokeRegion(task, receiver)
	})
}

// LinkBlackhole drops every frame on a host's uplink and downlink for the
// window [at, at+dur). The sliding window retransmits across the hole; with
// Config.MaxRetries bounded, a hole longer than the retry budget aborts the
// stream instead.
func (o *Orchestrator) LinkBlackhole(at, dur time.Duration, host core.HostID) {
	o.At(at, fmt.Sprintf("blackhole host=%d", host), func() {
		o.fab.HostUplink(host).SetBlackhole(true)
		o.fab.HostDownlink(host).SetBlackhole(true)
	})
	o.At(at+dur, fmt.Sprintf("heal blackhole host=%d", host), func() {
		o.fab.HostUplink(host).SetBlackhole(false)
		o.fab.HostDownlink(host).SetBlackhole(false)
	})
}

// LinkDegrade overrides a host's uplink and downlink fault model (loss,
// duplication, reordering) for the window [at, at+dur), then restores the
// configured model.
func (o *Orchestrator) LinkDegrade(at, dur time.Duration, host core.HostID, f netsim.Fault) {
	o.At(at, fmt.Sprintf("degrade link host=%d", host), func() {
		o.fab.HostUplink(host).SetFault(f)
		o.fab.HostDownlink(host).SetFault(f)
	})
	o.At(at+dur, fmt.Sprintf("heal link host=%d", host), func() {
		o.fab.HostUplink(host).ClearFault()
		o.fab.HostDownlink(host).ClearFault()
	})
}

// HostStall freezes a host daemon for [at, at+dur): it neither sends nor
// receives (crash-stop that later resumes with its state intact — the
// process survived, the box was wedged). Peers retransmit across the stall.
func (o *Orchestrator) HostStall(at, dur time.Duration, host core.HostID) {
	o.At(at, fmt.Sprintf("stall host=%d", host), func() { o.fab.Daemon(host).Stall() })
	o.At(at+dur, fmt.Sprintf("resume host=%d", host), func() { o.fab.Daemon(host).Resume() })
}

// Scenario is a named, reproducible fault script.
type Scenario struct {
	Name string
	Desc string
	// Inject schedules the scenario's events; timings are expressed as
	// fractions of scale, the expected fault-free task duration, so the
	// faults land mid-task at any workload size.
	Inject func(o *Orchestrator, scale time.Duration)
}

// Scenarios is the standard library of fault scripts used by the chaos
// experiment and the correctness-invariant tests. task and receiver identify
// the aggregation task the revocation scenario targets; sender is the host
// whose link/daemon the network scenarios disturb.
func Scenarios(task core.TaskID, receiver core.HostID, sender core.HostID) []Scenario {
	frac := func(scale time.Duration, num, den int64) time.Duration {
		return scale * time.Duration(num) / time.Duration(den)
	}
	return []Scenario{
		{
			Name: "switch-reboot",
			Desc: "switch crashes mid-task, reboots; hosts re-attach",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.SwitchOutage(ask.TheSwitch, frac(s, 1, 4), frac(s, 1, 4))
			},
		},
		{
			Name: "double-reboot",
			Desc: "two switch outages in one task",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.SwitchOutage(ask.TheSwitch, frac(s, 1, 5), frac(s, 3, 20))
				o.SwitchOutage(ask.TheSwitch, frac(s, 3, 5), frac(s, 3, 20))
			},
		},
		{
			Name: "region-revoked",
			Desc: "controller reclaims the task's AA rows mid-task",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.RevokeRegion(frac(s, 3, 10), task, receiver)
			},
		},
		{
			Name: "link-loss",
			Desc: "one sender's link drops 20% of frames for half the task",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.LinkDegrade(frac(s, 1, 5), frac(s, 1, 2), sender, netsim.Fault{LossProb: 0.2})
			},
		},
		{
			Name: "link-blackhole",
			Desc: "one sender's link goes dark briefly; retransmission bridges it",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.LinkBlackhole(frac(s, 3, 10), frac(s, 1, 10), sender)
			},
		},
		{
			Name: "host-stall",
			Desc: "one sender daemon freezes briefly, then resumes",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.HostStall(frac(s, 3, 10), frac(s, 1, 10), sender)
			},
		},
		{
			Name: "reboot-under-loss",
			Desc: "switch outage while every frame also risks 5% loss",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.LinkDegrade(0, s, sender, netsim.Fault{LossProb: 0.05})
				o.SwitchOutage(ask.TheSwitch, frac(s, 1, 4), frac(s, 1, 4))
			},
		},
	}
}
