// Package chaos is the fault-injection orchestrator for the simulated ASK
// rack: it schedules scripted failures — switch crashes and reboots, per-task
// AA-region revocations, link black-holes and degradations, host daemon
// stalls — on the deterministic virtual clock, so every chaos run is exactly
// reproducible for a given seed and script.
//
// The orchestrator is a thin scheduling layer over ask.Cluster: each injected
// event is a named closure fired at an absolute virtual time via sim.At, and
// every firing is appended to a log that experiments and tests can assert
// against. Faults must heal within the script (a crash needs a matching
// reboot, a black-hole a matching clear), otherwise in-flight tasks cannot
// complete and the simulation will not quiesce.
package chaos

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Record is one fired injection.
type Record struct {
	At   sim.Time
	Desc string
}

// Orchestrator schedules fault injections against one cluster.
type Orchestrator struct {
	cl  *ask.Cluster
	log []Record
	// injections counts fired events (chaos.injections on the cluster
	// registry); tr mirrors every firing into the trace ring. Both are
	// nil-safe no-ops on an uninstrumented cluster.
	injections *telemetry.Counter
	tr         *telemetry.Tracer
}

// New wraps a cluster in an orchestrator. The cluster should run with
// Config.Failover on; injecting switch faults into a non-failover cluster
// deadlocks tasks whose state died with the switch.
func New(cl *ask.Cluster) *Orchestrator {
	o := &Orchestrator{cl: cl}
	if cl.Tel != nil && cl.Tel.Registry != nil {
		o.injections = cl.Tel.Registry.Counter("chaos.injections")
		o.tr = cl.Tel.Tracer
	}
	return o
}

// Cluster returns the rack under test.
func (o *Orchestrator) Cluster() *ask.Cluster { return o.cl }

// Log returns the fired injections in firing order.
func (o *Orchestrator) Log() []Record { return o.log }

// At schedules fn at absolute virtual time d (an offset from t=0, which for
// the usual build-then-run flow is also cluster creation time). Events fire
// between simulation steps, never preempting a running process mid-yield.
func (o *Orchestrator) At(d time.Duration, desc string, fn func()) {
	t := sim.Time(0).Add(d)
	o.cl.Sim.At(t, func() {
		o.log = append(o.log, Record{At: o.cl.Sim.Now(), Desc: desc})
		o.injections.Inc()
		o.tr.EmitNote(telemetry.CompChaos, "inject", 0, desc)
		fn()
	})
}

// SwitchOutage crashes the switch at `at` and reboots it downFor later: the
// rack loses all in-switch aggregation state (registers, flows, regions) and
// every frame in the outage window is black-holed. Hosts detect the outage
// via probe timeouts, run degraded (host-only), and re-attach to the new
// switch incarnation after the reboot.
func (o *Orchestrator) SwitchOutage(at, downFor time.Duration) {
	o.At(at, "switch crash", o.cl.Switch.Crash)
	o.At(at+downFor, "switch reboot", o.cl.Switch.Reboot)
}

// RevokeRegion reclaims a task's aggregator rows at `at`. The switch keeps
// forwarding the task's packets host-only; the receiver drains the absorbed
// partials exactly once and finishes without in-network help.
func (o *Orchestrator) RevokeRegion(at time.Duration, task core.TaskID, receiver core.HostID) {
	o.At(at, fmt.Sprintf("revoke region task=%d", task), func() {
		// The region can legitimately be gone already (task finished or a
		// reboot wiped it); revoking nothing is a no-op fault.
		_ = o.cl.RevokeRegion(task, receiver)
	})
}

// LinkBlackhole drops every frame on a host's uplink and downlink for the
// window [at, at+dur). The sliding window retransmits across the hole; with
// Config.MaxRetries bounded, a hole longer than the retry budget aborts the
// stream instead.
func (o *Orchestrator) LinkBlackhole(at, dur time.Duration, host core.HostID) {
	o.At(at, fmt.Sprintf("blackhole host=%d", host), func() {
		o.cl.Net.Uplink(host).SetBlackhole(true)
		o.cl.Net.Downlink(host).SetBlackhole(true)
	})
	o.At(at+dur, fmt.Sprintf("heal blackhole host=%d", host), func() {
		o.cl.Net.Uplink(host).SetBlackhole(false)
		o.cl.Net.Downlink(host).SetBlackhole(false)
	})
}

// LinkDegrade overrides a host's uplink and downlink fault model (loss,
// duplication, reordering) for the window [at, at+dur), then restores the
// configured model.
func (o *Orchestrator) LinkDegrade(at, dur time.Duration, host core.HostID, f netsim.Fault) {
	o.At(at, fmt.Sprintf("degrade link host=%d", host), func() {
		o.cl.Net.Uplink(host).SetFault(f)
		o.cl.Net.Downlink(host).SetFault(f)
	})
	o.At(at+dur, fmt.Sprintf("heal link host=%d", host), func() {
		o.cl.Net.Uplink(host).ClearFault()
		o.cl.Net.Downlink(host).ClearFault()
	})
}

// HostStall freezes a host daemon for [at, at+dur): it neither sends nor
// receives (crash-stop that later resumes with its state intact — the
// process survived, the box was wedged). Peers retransmit across the stall.
func (o *Orchestrator) HostStall(at, dur time.Duration, host core.HostID) {
	o.At(at, fmt.Sprintf("stall host=%d", host), o.cl.Daemon(host).Stall)
	o.At(at+dur, fmt.Sprintf("resume host=%d", host), o.cl.Daemon(host).Resume)
}

// Scenario is a named, reproducible fault script.
type Scenario struct {
	Name string
	Desc string
	// Inject schedules the scenario's events; timings are expressed as
	// fractions of scale, the expected fault-free task duration, so the
	// faults land mid-task at any workload size.
	Inject func(o *Orchestrator, scale time.Duration)
}

// Scenarios is the standard library of fault scripts used by the chaos
// experiment and the correctness-invariant tests. task and receiver identify
// the aggregation task the revocation scenario targets; sender is the host
// whose link/daemon the network scenarios disturb.
func Scenarios(task core.TaskID, receiver core.HostID, sender core.HostID) []Scenario {
	frac := func(scale time.Duration, num, den int64) time.Duration {
		return scale * time.Duration(num) / time.Duration(den)
	}
	return []Scenario{
		{
			Name: "switch-reboot",
			Desc: "switch crashes mid-task, reboots; hosts re-attach",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.SwitchOutage(frac(s, 1, 4), frac(s, 1, 4))
			},
		},
		{
			Name: "double-reboot",
			Desc: "two switch outages in one task",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.SwitchOutage(frac(s, 1, 5), frac(s, 3, 20))
				o.SwitchOutage(frac(s, 3, 5), frac(s, 3, 20))
			},
		},
		{
			Name: "region-revoked",
			Desc: "controller reclaims the task's AA rows mid-task",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.RevokeRegion(frac(s, 3, 10), task, receiver)
			},
		},
		{
			Name: "link-loss",
			Desc: "one sender's link drops 20% of frames for half the task",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.LinkDegrade(frac(s, 1, 5), frac(s, 1, 2), sender, netsim.Fault{LossProb: 0.2})
			},
		},
		{
			Name: "link-blackhole",
			Desc: "one sender's link goes dark briefly; retransmission bridges it",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.LinkBlackhole(frac(s, 3, 10), frac(s, 1, 10), sender)
			},
		},
		{
			Name: "host-stall",
			Desc: "one sender daemon freezes briefly, then resumes",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.HostStall(frac(s, 3, 10), frac(s, 1, 10), sender)
			},
		},
		{
			Name: "reboot-under-loss",
			Desc: "switch outage while every frame also risks 5% loss",
			Inject: func(o *Orchestrator, s time.Duration) {
				o.LinkDegrade(0, s, sender, netsim.Fault{LossProb: 0.05})
				o.SwitchOutage(frac(s, 1, 4), frac(s, 1, 4))
			},
		},
	}
}
