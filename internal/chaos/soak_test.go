package chaos_test

// Soak-harness tests: the acceptance criteria of the integrity work.
//
//  1. With CorruptProb=1e-3 on every link (an honest, verification-enabled
//     build), a full end-to-end run still converges to the exact analytic
//     ground truth, and the quarantine counters prove the corruption path
//     was actually exercised.
//  2. A deliberately-broken build — checksum verification disabled via the
//     core.Config.DisableChecksumVerify fault hook — is caught by the soak
//     harness, which shrinks the failing schedule and prints a reproducer
//     seed.

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/netsim"
)

func TestSoakPassesUnderRandomFaults(t *testing.T) {
	// A multi-seed soak of the honest build: random-walk schedules of
	// outages, black-holes, loss, corruption bursts, and stalls must never
	// violate an invariant. Seeds 6, 9 and 20 draw back-to-back switch
	// outages that once triggered a replay double-count (see
	// TestBackToBackOutagesDoNotDoubleCount); they stay pinned here.
	for _, seed := range []int64{1, 2, 3, 6, 9, 20} {
		rep, err := chaos.Soak(chaos.SoakConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Passed() {
			t.Fatalf("seed %d soak failed:\n%s", seed, rep)
		}
		if len(rep.Schedule) == 0 {
			t.Fatalf("seed %d drew an empty schedule", seed)
		}
		if rep.Outcome.Retransmits == 0 {
			t.Fatalf("seed %d: schedule injected faults but no retransmissions happened:\n%s", seed, rep.Schedule)
		}
	}
}

func TestSoakConvergesUnderContinuousCorruption(t *testing.T) {
	// Acceptance criterion 1: CorruptProb=1e-3 on every link for the whole
	// run; the result must still be exact and the corrupt-drop counters
	// must show the integrity path fired.
	rep, err := chaos.Soak(chaos.SoakConfig{
		Seed: 11,
		Base: netsim.Fault{CorruptProb: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("soak under continuous corruption failed:\n%s", rep)
	}
	if dropped := rep.Outcome.SwitchCorruptDropped + rep.Outcome.HostCorruptDropped; dropped == 0 {
		t.Fatal("CorruptProb=1e-3 run quarantined nothing; corruption path not exercised")
	}
	if rep.Outcome.Retransmits == 0 {
		t.Fatal("quarantined frames were never retransmitted")
	}
}

func TestSoakCatchesDisabledChecksumVerification(t *testing.T) {
	// Acceptance criterion 2: the broken build. With verification disabled,
	// corrupted bytes decode into garbage tuples and the conservation
	// invariant must trip; the harness must shrink the schedule and print a
	// reproducer. The heavy base corruption rate makes every corrupt burst
	// redundant, so the shrinker should reduce the schedule drastically —
	// often to empty (the base config alone fails).
	cfg := chaos.SoakConfig{
		Seed:                  5,
		Base:                  netsim.Fault{CorruptProb: 5e-3},
		DisableChecksumVerify: true,
	}
	rep, err := chaos.Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("soak passed on a build with checksum verification disabled")
	}
	if rep.Shrunk == nil {
		t.Fatal("failing soak did not produce a shrunken schedule")
	}
	if len(rep.Shrunk) >= len(rep.Schedule) && len(rep.Schedule) > 1 {
		t.Fatalf("shrinker removed nothing: %d of %d events kept", len(rep.Shrunk), len(rep.Schedule))
	}
	if rep.Runs < 2 {
		t.Fatalf("shrinking ran only %d replays", rep.Runs)
	}
	out := rep.String()
	if !strings.Contains(out, "reproduce with: asksim -soak -soak.seed=5") {
		t.Fatalf("report lacks reproducer line:\n%s", out)
	}
	if !strings.Contains(out, "minimal failing schedule") {
		t.Fatalf("report lacks shrunken schedule:\n%s", out)
	}
	// The shrunken schedule must still fail on replay — that is what makes
	// it a reproducer.
	if out := chaos.RunSchedule(cfg, rep.Shrunk, rep.Scale); out.OK() {
		t.Fatal("shrunken schedule does not reproduce the violation")
	}
}

func TestSoakIsDeterministic(t *testing.T) {
	cfg := chaos.SoakConfig{Seed: 4, Base: netsim.Fault{CorruptProb: 5e-4}}
	r1, err := chaos.Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := chaos.Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome != r2.Outcome {
		t.Fatalf("identical soak configs diverged:\n%+v\n%+v", r1.Outcome, r2.Outcome)
	}
	if len(r1.Schedule) != len(r2.Schedule) {
		t.Fatalf("schedule lengths diverged: %d vs %d", len(r1.Schedule), len(r2.Schedule))
	}
	for i := range r1.Schedule {
		if r1.Schedule[i] != r2.Schedule[i] {
			t.Fatalf("event %d diverged: %s vs %s", i, r1.Schedule[i], r2.Schedule[i])
		}
	}
}

func TestGenerateScheduleRespectsConstraints(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := chaos.SoakConfig{Seed: seed, Events: 8, Senders: 3}
		sched := chaos.GenerateSchedule(cfg)
		if len(sched) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		var lastStart int64 = -1
		for _, ev := range sched {
			if ev.StartMil < lastStart {
				t.Fatalf("seed %d: schedule not time-sorted", seed)
			}
			lastStart = ev.StartMil
			if ev.StartMil < 50 || ev.StartMil+ev.DurMil > 1150 {
				t.Fatalf("seed %d: event outside timeline: %s", seed, ev)
			}
			if ev.Kind != chaos.EvSwitchOutage {
				if ev.Host < 1 || int(ev.Host) > cfg.Senders {
					t.Fatalf("seed %d: event targets non-sender host: %s", seed, ev)
				}
			}
		}
		// Switch outages must not overlap each other; per-host faults must
		// not overlap on the same host.
		check := func(evs []chaos.Event, what string) {
			for i := 0; i < len(evs); i++ {
				for j := i + 1; j < len(evs); j++ {
					a, b := evs[i], evs[j]
					if a.StartMil < b.StartMil+b.DurMil && b.StartMil < a.StartMil+a.DurMil {
						t.Fatalf("seed %d: overlapping %s: %s / %s", seed, what, a, b)
					}
				}
			}
		}
		var outages []chaos.Event
		perHost := make(map[int][]chaos.Event)
		for _, ev := range sched {
			if ev.Kind == chaos.EvSwitchOutage {
				outages = append(outages, ev)
			} else {
				perHost[int(ev.Host)] = append(perHost[int(ev.Host)], ev)
			}
		}
		check(outages, "switch outages")
		for h, evs := range perHost {
			check(evs, "host faults on host "+string(rune('0'+h)))
		}
	}
}
