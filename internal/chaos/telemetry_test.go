package chaos_test

// End-to-end telemetry coverage: a telemetry-enabled cluster running a real
// task with a fault injected must export Prometheus text and a JSON snapshot
// that cover every instrumented component (pisa, switchd, hostd, window,
// netsim, chaos), and the trace ring must capture the failover lifecycle.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/ask"
	"repro/internal/chaos"
	"repro/internal/telemetry"
)

func TestTelemetryCoversEveryComponent(t *testing.T) {
	scale := goldenElapsed(t)
	spec, streams, want := buildTask()

	opts := failoverOptions()
	opts.Telemetry = telemetry.Config{Enabled: true}
	cl, err := ask.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Tel == nil {
		t.Fatal("telemetry-enabled cluster has no Set")
	}
	orch := chaos.New(cl)
	orch.SwitchOutage(ask.TheSwitch, scale/4, scale/4)

	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("result wrong under outage: %s", res.Result.Diff(want, 5))
	}

	// Prometheus export must be well-formed and carry at least one metric
	// family from every instrumented component.
	var prom bytes.Buffer
	if err := telemetry.WritePrometheus(&prom, cl.Tel.Registry); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, family := range []string{
		"ask_pisa_passes",
		"ask_switchd_tuples_in",
		"ask_switchd_aa_occupancy",
		"ask_hostd_tuples_sent",
		"ask_hostd_failovers",
		"ask_hostd_replays_sent",
		"ask_window_sent_pkts",
		"ask_window_rtt_ns",
		"ask_netsim_link_tx_frames",
		"ask_chaos_injections",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("prometheus export missing family %q", family)
		}
	}

	// JSON snapshot must round-trip and carry the same coverage plus the
	// sampler series recorded during the task.
	var js bytes.Buffer
	if err := cl.Tel.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]any   `json:"histograms"`
		Series     map[string]any   `json:"series"`
		Events     []struct {
			Comp string `json:"comp"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	components := map[string]bool{}
	for name := range snap.Counters {
		components[name[:strings.IndexByte(name, '.')]] = true
	}
	for name := range snap.Gauges {
		components[name[:strings.IndexByte(name, '.')]] = true
	}
	for _, c := range []string{"pisa", "switchd", "hostd", "window", "netsim", "chaos"} {
		if !components[c] {
			t.Errorf("snapshot has no counters/gauges for component %q", c)
		}
	}
	if len(snap.Series) == 0 {
		t.Error("snapshot has no sampled series (sampler never ran?)")
	}

	// The injected outage must surface in the trace ring: the chaos inject
	// itself and the hostd failover enter/exit it provoked.
	kinds := map[string]bool{}
	for _, e := range snap.Events {
		kinds[e.Comp+"/"+e.Kind] = true
	}
	for _, k := range []string{"chaos/inject", "hostd/failover_enter", "hostd/failover_exit"} {
		if !kinds[k] {
			t.Errorf("trace ring missing event %q (have %v)", k, kinds)
		}
	}

	// Registry aggregate views must agree with the result the driver saw.
	if deg := time.Duration(cl.Tel.Registry.Max("hostd.degraded_time_ns")); deg == 0 {
		t.Error("registry reports zero degraded time after a switch outage")
	}
	if cl.Tel.Registry.Total("chaos.injections") == 0 {
		t.Error("chaos.injections counter never incremented")
	}
}
