package chaos

// Tenant-isolation soak: on a multi-tenant fat-tree, kill one tenant's
// traffic mid-stream (black-holing its sender's links past the bounded
// retry budget) and check that the blast radius stops at the tenant
// boundary — every other tenant's concurrent task must still finish with
// exact conservation against its analytic ground truth, while the victim
// either bridges the hole or aborts cleanly (no silent partial result).
//
// The run shares the rack soak's machinery: the same Schedule/Event types,
// the same millis-of-scale timeline, and the same shrinker (ShrinkWith)
// when a violation needs minimizing.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// TenantSoakConfig parameterizes one tenant-isolation soak. Everything is
// derived from Seed; equal configs replay identically.
type TenantSoakConfig struct {
	// Seed drives the workloads and the schedule draw.
	Seed int64
	// Tenants is the number of concurrent tenants (default 3), each with
	// weight 1 and one cross-leaf task.
	Tenants int
	// Victim is the tenant whose sender gets black-holed (default 1).
	Victim core.TenantID
	// Events is the number of black-hole windows to draw (default 3).
	Events int
	// Tuples per tenant (default 20 000) over Keys distinct keys
	// (default 512).
	Tuples int64
	Keys   int
	// Retries bounds per-packet retransmissions (default 4): a hole longer
	// than the budget aborts the victim's stream instead of stalling the
	// fabric forever.
	Retries int
}

func (c TenantSoakConfig) withDefaults() TenantSoakConfig {
	if c.Tenants == 0 {
		c.Tenants = 3
	}
	if c.Victim == 0 {
		c.Victim = 1
	}
	if c.Events == 0 {
		c.Events = 3
	}
	if c.Tuples == 0 {
		c.Tuples = 20_000
	}
	if c.Keys == 0 {
		c.Keys = 512
	}
	if c.Retries == 0 {
		c.Retries = 4
	}
	return c
}

// tenantSoakOptions is the fat-tree under test: one host pair (receiver on
// leaf 0, sender on leaf 1) per tenant, equal weights, bounded retries.
func tenantSoakOptions(cfg TenantSoakConfig) ask.FatTreeOptions {
	c := core.DefaultConfig()
	c.MaxRetries = cfg.Retries
	opts := ask.FatTreeOptions{
		Spines: 2, Leaves: 2, HostsPerLeaf: cfg.Tenants,
		Config: c, Seed: cfg.Seed,
	}
	for i := 0; i < cfg.Tenants; i++ {
		opts.Tenants = append(opts.Tenants, tenancy.TenantSpec{ID: core.TenantID(i + 1), Weight: 1})
	}
	return opts
}

// tenantTaskPlan is one tenant's task: spec, sender stream, and the
// host-computed ground truth its conservation check uses.
type tenantTaskPlan struct {
	tenant core.TenantID
	sender core.HostID
	spec   core.TaskSpec
	want   core.Result
}

func tenantSoakWorkload(cfg TenantSoakConfig, opts ask.FatTreeOptions) ([]tenantTaskPlan, map[core.TenantID]core.Stream) {
	plans := make([]tenantTaskPlan, 0, cfg.Tenants)
	streams := make(map[core.TenantID]core.Stream)
	for i := 0; i < cfg.Tenants; i++ {
		tn := core.TenantID(i + 1)
		sender := opts.HostAt(1, i)
		w := workload.Uniform(cfg.Keys, cfg.Tuples, cfg.Seed+int64(i))
		streams[tn] = w.Stream()
		plans = append(plans, tenantTaskPlan{
			tenant: tn,
			sender: sender,
			spec: core.TaskSpec{
				ID:       core.MakeTaskID(tn, uint32(i+1)),
				Receiver: opts.HostAt(0, i),
				Senders:  []core.HostID{sender},
				Op:       core.OpSum,
			},
			want: w.Reference(core.OpSum),
		})
	}
	return plans, streams
}

// GenerateTenantSchedule draws non-overlapping black-hole windows on the
// victim's links from cfg.Seed, on the same millis-of-scale timeline as the
// rack soak. Windows land in [100, 800) with durations in [100, 300), long
// against the retry budget so mid-stream holes genuinely kill the flow.
func GenerateTenantSchedule(cfg TenantSoakConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sched Schedule
	var windows [][2]int64
	for attempts := 0; len(sched) < cfg.Events && attempts < cfg.Events*64; attempts++ {
		start := 100 + rng.Int63n(700)
		dur := 100 + rng.Int63n(200)
		if overlapsAny(windows, start, start+dur) {
			continue
		}
		windows = append(windows, [2]int64{start, start + dur})
		sched = append(sched, Event{Kind: EvLinkBlackhole, StartMil: start, DurMil: dur})
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].StartMil < sched[j].StartMil })
	return sched
}

// TenantOutcome is the verdict of one tenant-soak replay.
type TenantOutcome struct {
	// Violation is empty when isolation held, else a one-line description.
	Violation string
	// VictimAborted reports whether the victim's stream hit the bounded
	// retry budget (false when the holes were short enough to bridge).
	VictimAborted bool
	// Elapsed is the slowest surviving tenant's task duration.
	Elapsed time.Duration
}

// OK reports whether the isolation invariants held.
func (o TenantOutcome) OK() bool { return o.Violation == "" }

// RunTenantSchedule replays one black-hole script against a fresh
// multi-tenant fat-tree and checks the isolation invariants. Deterministic:
// equal (cfg, sched, scale) triples produce equal outcomes.
func RunTenantSchedule(cfg TenantSoakConfig, sched Schedule, scale time.Duration) TenantOutcome {
	cfg = cfg.withDefaults()
	opts := tenantSoakOptions(cfg)
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return TenantOutcome{Violation: fmt.Sprintf("cluster build failed: %v", err)}
	}
	plans, streams := tenantSoakWorkload(cfg, opts)

	victimSender := core.HostID(0)
	for _, pl := range plans {
		if pl.tenant == cfg.Victim {
			victimSender = pl.sender
		}
	}
	at := func(mil int64) sim.Time { return sim.Time(0).Add(scale * time.Duration(mil) / 1000) }
	for _, ev := range sched {
		if ev.Kind != EvLinkBlackhole {
			continue
		}
		fc.Sim.At(at(ev.StartMil), func() {
			fc.Net.Uplink(victimSender).SetBlackhole(true)
			fc.Net.Downlink(victimSender).SetBlackhole(true)
		})
		fc.Sim.At(at(ev.StartMil+ev.DurMil), func() {
			fc.Net.Uplink(victimSender).SetBlackhole(false)
			fc.Net.Downlink(victimSender).SetBlackhole(false)
		})
	}

	pending := make(map[core.TenantID]*ask.FatTreePendingTask)
	for _, pl := range plans {
		pt, err := fc.StartTask(pl.spec, map[core.HostID]core.Stream{pl.sender: streams[pl.tenant]})
		if err != nil {
			return TenantOutcome{Violation: fmt.Sprintf("tenant %d submission failed: %v", pl.tenant, err)}
		}
		pending[pl.tenant] = pt
	}
	// Cap virtual time like the rack soak: a livelocked fabric must return.
	deadline := sim.Time(0).Add(25 * scale)
	end := fc.Sim.Run(deadline)

	var out TenantOutcome
	aborts := func(h core.HostID) int64 {
		var n int64
		for _, cs := range fc.Daemon(h).ChannelStats() {
			n += cs.Aborts
		}
		return n
	}
	for _, pl := range plans {
		res, err := pending[pl.tenant].Get()
		if pl.tenant == cfg.Victim {
			switch {
			case err == nil:
				// The holes were bridged; a completed victim must still be
				// exact — a partial result would be silent data loss.
				if !res.Result.Equal(pl.want) {
					out.Violation = fmt.Sprintf("victim tenant %d completed with a wrong result: %s",
						pl.tenant, res.Result.Diff(pl.want, 5))
					return out
				}
			case aborts(pl.sender) > 0:
				out.VictimAborted = true
			case end >= deadline:
				out.Violation = fmt.Sprintf("victim tenant %d livelocked to the virtual-time cap", pl.tenant)
				return out
			default:
				out.Violation = fmt.Sprintf("victim tenant %d incomplete without a transport abort: %v", pl.tenant, err)
				return out
			}
			continue
		}
		// Isolation: every other tenant is untouched — task complete, result
		// exactly the ground truth, no transport aborts on its hosts.
		if err != nil {
			out.Violation = fmt.Sprintf("tenant %d (not the victim) did not complete: %v", pl.tenant, err)
			return out
		}
		if !res.Result.Equal(pl.want) {
			out.Violation = fmt.Sprintf("tenant %d (not the victim) conservation violated: %s",
				pl.tenant, res.Result.Diff(pl.want, 5))
			return out
		}
		if n := aborts(pl.sender) + aborts(pl.spec.Receiver); n != 0 {
			out.Violation = fmt.Sprintf("tenant %d (not the victim) saw %d transport aborts", pl.tenant, n)
			return out
		}
		if d := time.Duration(res.Elapsed); d > out.Elapsed {
			out.Elapsed = d
		}
	}
	return out
}

// tenantGoldenScale runs the multi-tenant workload once fault-free and
// returns the slowest tenant's duration — the schedule's timing scale.
func tenantGoldenScale(cfg TenantSoakConfig) (time.Duration, error) {
	opts := tenantSoakOptions(cfg)
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return 0, err
	}
	plans, streams := tenantSoakWorkload(cfg, opts)
	pending := make(map[core.TenantID]*ask.FatTreePendingTask)
	for _, pl := range plans {
		pt, err := fc.StartTask(pl.spec, map[core.HostID]core.Stream{pl.sender: streams[pl.tenant]})
		if err != nil {
			return 0, fmt.Errorf("chaos: golden tenant run failed to submit: %w", err)
		}
		pending[pl.tenant] = pt
	}
	fc.Sim.Run(0)
	var scale time.Duration
	for _, pl := range plans {
		res, err := pending[pl.tenant].Get()
		if err != nil {
			return 0, fmt.Errorf("chaos: golden tenant run failed: %w", err)
		}
		if !res.Result.Equal(pl.want) {
			return 0, fmt.Errorf("chaos: golden tenant run violates conservation: %s", res.Result.Diff(pl.want, 5))
		}
		if d := time.Duration(res.Elapsed); d > scale {
			scale = d
		}
	}
	return scale, nil
}

// TenantReport is the full record of one tenant-isolation soak.
type TenantReport struct {
	Cfg      TenantSoakConfig
	Scale    time.Duration
	Schedule Schedule
	Outcome  TenantOutcome
	// Shrunk is the minimal isolation-violating schedule (nil on pass).
	Shrunk Schedule
	// Runs is the total number of schedule replays, shrinking included.
	Runs int
}

// Passed reports whether isolation held on the full schedule.
func (r TenantReport) Passed() bool { return r.Outcome.OK() }

func (r TenantReport) String() string {
	var b strings.Builder
	if r.Passed() {
		verdict := "victim bridged the holes"
		if r.Outcome.VictimAborted {
			verdict = "victim aborted cleanly"
		}
		fmt.Fprintf(&b, "tenant soak seed=%d PASS: %d black-hole windows over %v, %s, others exact (slowest %v)\n",
			r.Cfg.Seed, len(r.Schedule), r.Scale, verdict, r.Outcome.Elapsed)
		return b.String()
	}
	fmt.Fprintf(&b, "tenant soak seed=%d FAIL: %s\n", r.Cfg.Seed, r.Outcome.Violation)
	fmt.Fprintf(&b, "minimal failing schedule (%d of %d events, %d replays):\n",
		len(r.Shrunk), len(r.Schedule), r.Runs)
	fmt.Fprintf(&b, "%s\n", r.Shrunk)
	return b.String()
}

// TenantSoak runs one full tenant-isolation soak for cfg: golden timing
// run, schedule generation, replay, and — on an isolation violation —
// shrinking via the shared ShrinkWith minimizer.
func TenantSoak(cfg TenantSoakConfig) (TenantReport, error) {
	cfg = cfg.withDefaults()
	scale, err := tenantGoldenScale(cfg)
	if err != nil {
		return TenantReport{}, err
	}
	sched := GenerateTenantSchedule(cfg)
	rep := TenantReport{Cfg: cfg, Scale: scale, Schedule: sched}
	rep.Outcome = RunTenantSchedule(cfg, sched, scale)
	rep.Runs = 1
	if !rep.Outcome.OK() {
		shrunk, runs := ShrinkWith(func(s Schedule) bool {
			return !RunTenantSchedule(cfg, s, scale).OK()
		}, sched)
		rep.Shrunk = shrunk
		rep.Runs += runs
	}
	return rep, nil
}
