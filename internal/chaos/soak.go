package chaos

// Chaos soak: seeded random-walk fault schedules over full end-to-end
// aggregation runs, with an invariant harness and a shrinker.
//
// A soak run is three deterministic steps:
//
//  1. GenerateSchedule draws a fault script — switch outages, link
//     black-holes, loss/duplication degradation, corruption bursts, host
//     stalls — from a seeded PRNG, with event times expressed in
//     thousandths of the fault-free task duration so the same schedule
//     lands mid-task at any workload size.
//  2. RunSchedule replays the script against a fresh cluster and checks
//     the conservation invariant (the aggregated result equals the
//     analytic per-key ground truth) plus a set of consistency
//     invariants (no host stuck degraded, epochs coherent, no transport
//     aborts under an unbounded retry budget).
//  3. On violation, Shrink re-runs prefixes and single-event elisions of
//     the schedule until no event can be removed without the failure
//     disappearing, and the Report prints the minimal schedule plus a
//     one-line reproducer (`asksim -soak -soak.seed=N ...`).
//
// Everything is derived from SoakConfig.Seed — the workload, the
// schedule, the link-fault RNG — so a reproducer seed replays the exact
// failure. The harness itself is deterministic: no wall clock, no global
// randomness (simdeterminism-checked).

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SoakConfig parameterizes one soak run. The zero value of every field
// except Seed is replaced by a default; two runs with equal configs are
// identical.
type SoakConfig struct {
	// Seed drives everything: workload contents, schedule generation, and
	// the cluster's fault RNG.
	Seed int64
	// Events is the number of fault events to draw (default 6).
	Events int
	// Senders is the number of sending hosts (default 2; the receiver is
	// host 0, so the cluster has Senders+1 hosts).
	Senders int
	// Tuples per sender (default 30 000) over Keys distinct keys
	// (default 512).
	Tuples int64
	Keys   int
	// Base is a fault model applied to every link for the whole run, on
	// top of the scheduled events — e.g. Fault{CorruptProb: 1e-3} soaks
	// the checksum path continuously.
	Base netsim.Fault
	// DisableChecksumVerify mirrors core.Config.DisableChecksumVerify
	// into the cluster under test: the deliberately-broken build the
	// harness must catch. Never set outside tests of the harness itself.
	DisableChecksumVerify bool
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Events == 0 {
		c.Events = 6
	}
	if c.Senders == 0 {
		c.Senders = 2
	}
	if c.Tuples == 0 {
		c.Tuples = 30_000
	}
	if c.Keys == 0 {
		c.Keys = 512
	}
	return c
}

// EventKind enumerates the fault types a schedule can contain.
type EventKind int

const (
	EvSwitchOutage EventKind = iota
	EvLinkBlackhole
	EvLinkDegrade
	EvCorruptBurst
	EvHostStall
	// numRackEventKinds bounds the rack schedule generator's draw. The
	// fabric-only kinds below must stay after it: inserting before it would
	// silently reshuffle every existing rack soak seed.
	numRackEventKinds
	// EvSpineOutage / EvLeafOutage crash-and-reboot one addressed fat-tree
	// switch (Event.Addr). Only the fabric soak generator draws them.
	EvSpineOutage
	EvLeafOutage
)

func (k EventKind) String() string {
	switch k {
	case EvSwitchOutage:
		return "switch-outage"
	case EvLinkBlackhole:
		return "link-blackhole"
	case EvLinkDegrade:
		return "link-degrade"
	case EvCorruptBurst:
		return "corrupt-burst"
	case EvHostStall:
		return "host-stall"
	case EvSpineOutage:
		return "spine-outage"
	case EvLeafOutage:
		return "leaf-outage"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled fault. Times are in thousandths of the timing
// scale (the fault-free task duration), so schedules are workload-size
// independent.
type Event struct {
	Kind     EventKind
	StartMil int64 // start, in 1/1000 of scale
	DurMil   int64 // duration, in 1/1000 of scale
	// Host is the target of link and stall faults (unused for switch
	// outages).
	Host core.HostID
	// Addr is the fabric address of the switch an EvSpineOutage /
	// EvLeafOutage targets (unused for the rack's EvSwitchOutage, which
	// always hits ask.TheSwitch).
	Addr core.HostID
	// Fault is the override model for EvLinkDegrade / EvCorruptBurst.
	Fault netsim.Fault
}

func (e Event) String() string {
	s := fmt.Sprintf("%-14s t=[%4d,%4d)millis-of-scale", e.Kind, e.StartMil, e.StartMil+e.DurMil)
	switch e.Kind {
	case EvSwitchOutage:
		return s
	case EvSpineOutage, EvLeafOutage:
		return fmt.Sprintf("%s addr=%#x", s, uint16(e.Addr))
	case EvLinkDegrade:
		return fmt.Sprintf("%s host=%d loss=%.3f dup=%.3f", s, e.Host, e.Fault.LossProb, e.Fault.DupProb)
	case EvCorruptBurst:
		return fmt.Sprintf("%s host=%d corrupt=%.4f truncate=%.4f", s, e.Host, e.Fault.CorruptProb, e.Fault.TruncateProb)
	default:
		return fmt.Sprintf("%s host=%d", s, e.Host)
	}
}

// Schedule is an ordered fault script.
type Schedule []Event

// Apply installs every event on the orchestrator, mapping the millis-of-
// scale timeline onto virtual time.
func (s Schedule) Apply(o *Orchestrator, scale time.Duration) {
	at := func(mil int64) time.Duration { return scale * time.Duration(mil) / 1000 }
	for _, ev := range s {
		start, dur := at(ev.StartMil), at(ev.DurMil)
		switch ev.Kind {
		case EvSwitchOutage:
			o.SwitchOutage(ask.TheSwitch, start, dur)
		case EvSpineOutage, EvLeafOutage:
			o.SwitchOutage(ev.Addr, start, dur)
		case EvLinkBlackhole:
			o.LinkBlackhole(start, dur, ev.Host)
		case EvLinkDegrade, EvCorruptBurst:
			o.LinkDegrade(start, dur, ev.Host, ev.Fault)
		case EvHostStall:
			o.HostStall(start, dur, ev.Host)
		}
	}
}

func (s Schedule) String() string {
	if len(s) == 0 {
		return "  (empty schedule — base config alone fails)"
	}
	var b strings.Builder
	for i, ev := range s {
		fmt.Fprintf(&b, "  [%d] %s\n", i, ev)
	}
	return strings.TrimRight(b.String(), "\n")
}

// overlapsAny reports whether [start, end) intersects any interval in
// ivs, with a separation gap so healing completes before the next fault.
func overlapsAny(ivs [][2]int64, start, end int64) bool {
	const gap = 50
	for _, iv := range ivs {
		if start < iv[1]+gap && iv[0] < end+gap {
			return true
		}
	}
	return false
}

// GenerateSchedule draws a fault script from cfg.Seed. Constraints keep
// every draw runnable: switch outages never overlap each other, per-host
// faults never overlap on the same host, and only sender hosts are
// targeted (the receiver's link must stay up for the task to finish).
// Events land in [50, 900)millis of scale with durations in [50, 250), so
// every fault heals within the script.
func GenerateSchedule(cfg SoakConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sched Schedule
	var outages [][2]int64
	busy := make(map[core.HostID][][2]int64)
	for attempts := 0; len(sched) < cfg.Events && attempts < cfg.Events*64; attempts++ {
		kind := EventKind(rng.Intn(int(numRackEventKinds)))
		start := 50 + rng.Int63n(850)
		dur := 50 + rng.Int63n(200)
		ev := Event{Kind: kind, StartMil: start, DurMil: dur}
		if kind == EvSwitchOutage {
			if overlapsAny(outages, start, start+dur) {
				continue
			}
			outages = append(outages, [2]int64{start, start + dur})
		} else {
			host := core.HostID(1 + rng.Intn(cfg.Senders))
			if overlapsAny(busy[host], start, start+dur) {
				continue
			}
			busy[host] = append(busy[host], [2]int64{start, start + dur})
			ev.Host = host
			switch kind {
			case EvLinkDegrade:
				ev.Fault = netsim.Fault{
					LossProb: 0.05 + rng.Float64()*0.20,
					DupProb:  rng.Float64() * 0.05,
				}
			case EvCorruptBurst:
				ev.Fault = netsim.Fault{
					CorruptProb:  0.002 + rng.Float64()*0.02,
					TruncateProb: rng.Float64() * 0.004,
				}
			}
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].StartMil < sched[j].StartMil })
	return sched
}

// soakOptions is the cluster configuration a soak runs under: failover on
// (switch outages must not deadlock), shadow copies off (failover replay
// cannot attribute swap fetches), retries unbounded (black-holes must not
// abort streams — an abort is an invariant violation, not a scripted
// outcome), and the checksum-verification fault hook mirrored in.
func soakOptions(cfg SoakConfig) ask.Options {
	c := core.DefaultConfig()
	c.ShadowCopy = false
	c.Failover = true
	c.MaxRetries = 0
	c.DisableChecksumVerify = cfg.DisableChecksumVerify
	link := netsim.DefaultLinkConfig()
	link.Fault = cfg.Base
	return ask.Options{Hosts: cfg.Senders + 1, Config: c, Link: link, Seed: cfg.Seed}
}

// soakWorkload builds the task, per-sender streams, and the analytic
// ground truth the conservation invariant checks against. The ground
// truth is computed host-side from the workload spec, never from a
// cluster run — a broken datapath cannot contaminate it.
func soakWorkload(cfg SoakConfig) (core.TaskSpec, map[core.HostID]core.Stream, core.Result) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i := 0; i < cfg.Senders; i++ {
		h := core.HostID(i + 1)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(cfg.Keys, cfg.Tuples, cfg.Seed+int64(h))
		streams[h] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	return spec, streams, want
}

// goldenScale runs the task once on a fault-free, verification-enabled
// cluster and returns its duration — the timing scale schedules are
// expressed in. It errors if even the clean run violates conservation
// (the build is broken beyond what fault injection can reveal).
func goldenScale(cfg SoakConfig) (time.Duration, error) {
	opts := soakOptions(cfg)
	opts.Link.Fault = netsim.Fault{}
	opts.Config.DisableChecksumVerify = false
	spec, streams, want := soakWorkload(cfg)
	cl, err := ask.NewCluster(opts)
	if err != nil {
		return 0, err
	}
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		return 0, fmt.Errorf("chaos: golden run failed: %w", err)
	}
	if !res.Result.Equal(want) {
		return 0, fmt.Errorf("chaos: golden run violates conservation: %s", res.Result.Diff(want, 5))
	}
	return time.Duration(res.Elapsed), nil
}

// Outcome is the verdict of one schedule replay.
type Outcome struct {
	// Violation is empty on a clean run, else a one-line description of
	// the first invariant that failed.
	Violation string
	// Elapsed is the task's virtual duration (zero if it never finished).
	Elapsed time.Duration
	// Evidence counters: quarantined frames prove the integrity path was
	// exercised; retransmits and replays prove the reliability path was.
	SwitchCorruptDropped int64
	HostCorruptDropped   int64
	Retransmits          int64
	Replays              int64
}

// OK reports whether every invariant held.
func (o Outcome) OK() bool { return o.Violation == "" }

func violationf(format string, args ...any) Outcome {
	return Outcome{Violation: fmt.Sprintf(format, args...)}
}

// RunSchedule replays one schedule on a fresh cluster and checks the
// invariants. It is deterministic: equal (cfg, sched, scale) triples
// produce equal Outcomes.
func RunSchedule(cfg SoakConfig, sched Schedule, scale time.Duration) Outcome {
	cfg = cfg.withDefaults()
	spec, streams, want := soakWorkload(cfg)
	cl, err := ask.NewCluster(soakOptions(cfg))
	if err != nil {
		return violationf("cluster build failed: %v", err)
	}
	orch := New(cl)
	sched.Apply(orch, scale)
	pt, err := cl.StartTask(spec, streams)
	if err != nil {
		return violationf("task submission failed: %v", err)
	}
	// Run under a virtual-time cap: a broken datapath can livelock (e.g.
	// forged sequence state retransmitting forever), and an uncapped run
	// would never return. Every fault heals by 1.15x scale, so 25x is far
	// beyond any legitimate recovery tail.
	deadline := sim.Time(0).Add(25 * scale)
	end := cl.Sim.Run(deadline)
	res, err := pt.Get()
	if err != nil {
		if end >= deadline {
			return violationf("task still running at virtual-time cap %v (livelock)", 25*scale)
		}
		// The cluster quiesced with the receiver still waiting.
		return violationf("task did not complete: %v", err)
	}
	out := Outcome{
		Elapsed:              time.Duration(res.Elapsed),
		SwitchCorruptDropped: cl.Switch.Stats().CorruptDropped,
	}
	for h := core.HostID(0); h < core.HostID(cfg.Senders+1); h++ {
		d := cl.Daemon(h)
		out.HostCorruptDropped += d.Stats().CorruptDropped
		out.Replays += d.FailoverStats().ReplaysSent
		for _, cs := range d.ChannelStats() {
			out.Retransmits += cs.Retransmits
		}
	}
	// Invariant 1 — conservation: the aggregated result is exactly the
	// analytic per-key ground truth. Every tuple counted once, none lost
	// to faults, none double-counted by retransmission or replay, none
	// fabricated from corrupted bytes.
	if !res.Result.Equal(want) {
		out.Violation = "conservation violated: " + res.Result.Diff(want, 5)
		return out
	}
	// Invariant 2 — recovery: every fault healed, so no host may still be
	// degraded once the cluster quiesces.
	for h := core.HostID(0); h < core.HostID(cfg.Senders+1); h++ {
		if cl.Daemon(h).Degraded() {
			out.Violation = fmt.Sprintf("host %d still degraded at quiescence", h)
			return out
		}
	}
	// Invariant 3 — epoch coherence: the switch epoch advances once per
	// reboot, and no host believes in a future incarnation.
	if got, want := int64(cl.Switch.Epoch()), 1+cl.Switch.Stats().Reboots; got != want {
		out.Violation = fmt.Sprintf("switch epoch %d != 1+reboots %d", got, want)
		return out
	}
	for h := core.HostID(0); h < core.HostID(cfg.Senders+1); h++ {
		if he := cl.Daemon(h).Epoch(); he > cl.Switch.Epoch() {
			out.Violation = fmt.Sprintf("host %d epoch %d ahead of switch epoch %d", h, he, cl.Switch.Epoch())
			return out
		}
	}
	// Invariant 4 — transport sanity: with an unbounded retry budget no
	// flight may abort, and no channel may ACK more than it sent.
	for h := core.HostID(0); h < core.HostID(cfg.Senders+1); h++ {
		for ch, cs := range cl.Daemon(h).ChannelStats() {
			if cs.Aborts != 0 {
				out.Violation = fmt.Sprintf("host %d channel %d aborted %d flights under unbounded retries", h, ch, cs.Aborts)
				return out
			}
			if cs.Acked > cs.Sent {
				out.Violation = fmt.Sprintf("host %d channel %d acked %d > sent %d", h, ch, cs.Acked, cs.Sent)
				return out
			}
		}
	}
	return out
}

// Shrink minimizes a failing schedule against the rack soak's replay.
func Shrink(cfg SoakConfig, sched Schedule, scale time.Duration) (Schedule, int) {
	return ShrinkWith(func(s Schedule) bool {
		return !RunSchedule(cfg, s, scale).OK()
	}, sched)
}

// ShrinkWith minimizes a failing schedule against an arbitrary replay
// predicate (the rack soak and the tenant soak share it): first the empty
// schedule (the base config alone may fail), then the shortest failing
// prefix, then repeated single-event elision until every remaining event is
// load-bearing. It returns the minimal schedule and the number of replays
// spent. fails must be deterministic for the minimization to mean anything.
func ShrinkWith(fails func(Schedule) bool, sched Schedule) (Schedule, int) {
	runs := 0
	check := func(s Schedule) bool {
		runs++
		return fails(s)
	}
	if check(nil) {
		return Schedule{}, runs
	}
	cur := sched
	for k := 1; k < len(sched); k++ {
		if check(sched[:k]) {
			cur = sched[:k]
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := append(append(Schedule{}, cur[:i]...), cur[i+1:]...)
			if check(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur, runs
}

// Report is the full record of one soak: config, scale, the drawn
// schedule, its outcome, and — on failure — the shrunken schedule and a
// reproducer line.
type Report struct {
	Cfg      SoakConfig
	Scale    time.Duration
	Schedule Schedule
	Outcome  Outcome
	// Shrunk is the minimal failing schedule (nil when the soak passed;
	// possibly empty when the base config alone fails).
	Shrunk Schedule
	// Runs is the total number of schedule replays, shrinking included.
	Runs int
}

// Passed reports whether every invariant held on the full schedule.
func (r Report) Passed() bool { return r.Outcome.OK() }

// Reproducer is the one-line command that replays this exact soak.
func (r Report) Reproducer() string {
	s := fmt.Sprintf("asksim -soak -soak.seed=%d -soak.events=%d -soak.senders=%d -soak.tuples=%d",
		r.Cfg.Seed, r.Cfg.Events, r.Cfg.Senders, r.Cfg.Tuples)
	if r.Cfg.Base.CorruptProb != 0 {
		s += fmt.Sprintf(" -soak.corrupt=%g", r.Cfg.Base.CorruptProb)
	}
	if r.Cfg.DisableChecksumVerify {
		s += " -soak.break-checksums"
	}
	return s
}

func (r Report) String() string {
	var b strings.Builder
	if r.Passed() {
		fmt.Fprintf(&b, "soak seed=%d PASS: %d events over %v, elapsed %v\n",
			r.Cfg.Seed, len(r.Schedule), r.Scale, r.Outcome.Elapsed)
		fmt.Fprintf(&b, "  evidence: corrupt_dropped switch=%d host=%d, retransmits=%d, replays=%d\n",
			r.Outcome.SwitchCorruptDropped, r.Outcome.HostCorruptDropped,
			r.Outcome.Retransmits, r.Outcome.Replays)
		return b.String()
	}
	fmt.Fprintf(&b, "soak seed=%d FAIL: %s\n", r.Cfg.Seed, r.Outcome.Violation)
	fmt.Fprintf(&b, "minimal failing schedule (%d of %d events, %d replays):\n",
		len(r.Shrunk), len(r.Schedule), r.Runs)
	fmt.Fprintf(&b, "%s\n", r.Shrunk)
	fmt.Fprintf(&b, "reproduce with: %s\n", r.Reproducer())
	return b.String()
}

// Soak runs one full soak for cfg: golden timing run, schedule
// generation, replay, and — on violation — shrinking. The only error
// return is a golden-run failure; fault-induced violations are reported
// in the Report, reproducer included.
func Soak(cfg SoakConfig) (Report, error) {
	cfg = cfg.withDefaults()
	scale, err := goldenScale(cfg)
	if err != nil {
		return Report{}, err
	}
	sched := GenerateSchedule(cfg)
	rep := Report{Cfg: cfg, Scale: scale, Schedule: sched}
	rep.Outcome = RunSchedule(cfg, sched, scale)
	rep.Runs = 1
	if !rep.Outcome.OK() {
		shrunk, runs := Shrink(cfg, sched, scale)
		rep.Shrunk = shrunk
		rep.Runs += runs
	}
	return rep, nil
}
