package chaos_test

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/netsim"
)

// TestFabricSoakPassesUnderRandomFaults runs the full fat-tree soak — spine
// and leaf outages, link black-holes, corruption bursts over two tenants —
// and requires every invariant (per-tenant conservation, full recovery,
// epoch coherence, transport sanity) to hold against analytic ground truth.
func TestFabricSoakPassesUnderRandomFaults(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := chaos.FabricSoak(chaos.FabricSoakConfig{
			Seed: seed,
			Base: netsim.Fault{CorruptProb: 1e-3},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Passed() {
			t.Fatalf("seed %d failed:\n%s", seed, rep)
		}
		if len(rep.Schedule) == 0 {
			t.Fatalf("seed %d: empty schedule soaked nothing", seed)
		}
	}
}

// TestFabricSoakIsDeterministic replays one config twice: schedules and
// outcomes (elapsed virtual time, replay and retransmit counts, corruption
// tallies) must be byte-identical.
func TestFabricSoakIsDeterministic(t *testing.T) {
	cfg := chaos.FabricSoakConfig{Seed: 4, Base: netsim.Fault{CorruptProb: 5e-4}}
	r1, err := chaos.FabricSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := chaos.FabricSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome != r2.Outcome {
		t.Fatalf("identical fabric soak configs diverged:\n%+v\n%+v", r1.Outcome, r2.Outcome)
	}
	if len(r1.Schedule) != len(r2.Schedule) {
		t.Fatalf("schedule lengths diverged: %d vs %d", len(r1.Schedule), len(r2.Schedule))
	}
	for i := range r1.Schedule {
		if r1.Schedule[i] != r2.Schedule[i] {
			t.Fatalf("event %d diverged: %s vs %s", i, r1.Schedule[i], r2.Schedule[i])
		}
	}
}

// TestGenerateFabricScheduleRespectsConstraints checks the draw invariants:
// time-sorted events inside the timeline, switch-tier outages globally
// non-overlapping with valid fabric addresses, and host faults only on
// sender hosts (leaves 1+) without per-host overlap.
func TestGenerateFabricScheduleRespectsConstraints(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := chaos.FabricSoakConfig{Seed: seed, Events: 8}
		sched := chaos.GenerateFabricSchedule(cfg)
		if len(sched) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		spines, leaves, tenants := 2, 3, 2 // withDefaults
		var lastStart int64 = -1
		var outages []chaos.Event
		perHost := make(map[int][]chaos.Event)
		for _, ev := range sched {
			if ev.StartMil < lastStart {
				t.Fatalf("seed %d: schedule not time-sorted", seed)
			}
			lastStart = ev.StartMil
			if ev.StartMil < 50 || ev.StartMil+ev.DurMil > 1150 {
				t.Fatalf("seed %d: event outside timeline: %s", seed, ev)
			}
			switch ev.Kind {
			case chaos.EvSpineOutage:
				if _, ok := netsim.SpineIndex(ev.Addr, spines); !ok {
					t.Fatalf("seed %d: spine outage with bad address: %s", seed, ev)
				}
				outages = append(outages, ev)
			case chaos.EvLeafOutage:
				if _, ok := netsim.LeafIndex(ev.Addr, leaves); !ok {
					t.Fatalf("seed %d: leaf outage with bad address: %s", seed, ev)
				}
				outages = append(outages, ev)
			case chaos.EvSwitchOutage:
				t.Fatalf("seed %d: rack-only event kind in a fabric schedule: %s", seed, ev)
			default:
				// Host IDs are leaf-major: leaf = id / hostsPerLeaf, and the
				// fabric soak runs one host per tenant per leaf.
				leaf := int(ev.Host) / tenants
				if leaf < 1 || leaf >= leaves {
					t.Fatalf("seed %d: host fault on non-sender host %d: %s", seed, ev.Host, ev)
				}
				perHost[int(ev.Host)] = append(perHost[int(ev.Host)], ev)
			}
		}
		check := func(evs []chaos.Event, what string) {
			for i := 0; i < len(evs); i++ {
				for j := i + 1; j < len(evs); j++ {
					a, b := evs[i], evs[j]
					if a.StartMil < b.StartMil+b.DurMil && b.StartMil < a.StartMil+a.DurMil {
						t.Fatalf("seed %d: overlapping %s: %s / %s", seed, what, a, b)
					}
				}
			}
		}
		check(outages, "switch-tier outages")
		for _, evs := range perHost {
			check(evs, "host faults")
		}
	}
}

// TestFabricReproducerCarriesTopologyFlags pins the reproducer contract: the
// one-liner must replay on the right topology, so it has to carry the
// fat-tree flags alongside the seed — a reproducer that omits them would
// replay a rack soak and "pass".
func TestFabricReproducerCarriesTopologyFlags(t *testing.T) {
	rep := chaos.FabricReport{Cfg: chaos.FabricSoakConfig{
		Seed: 7, Events: 5, Spines: 3, Leaves: 4, Tuples: 1000,
		Base: netsim.Fault{CorruptProb: 2e-3},
	}}
	line := rep.Reproducer()
	for _, want := range []string{
		"asksim -soak", "-topology fattree", "-soak.seed=7", "-soak.events=5",
		"-soak.spines=3", "-soak.leaves=4", "-soak.tuples=1000", "-soak.corrupt=0.002",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("reproducer %q lacks %q", line, want)
		}
	}
	// A failing report prints the reproducer and its minimal schedule.
	rep.Outcome.Violation = "synthetic"
	rep.Shrunk = chaos.Schedule{{Kind: chaos.EvSpineOutage, Addr: netsim.SpineAddr(1), StartMil: 100, DurMil: 80}}
	out := rep.String()
	if !strings.Contains(out, "reproduce with: "+line) {
		t.Fatalf("failing report lacks the reproducer line:\n%s", out)
	}
	if !strings.Contains(out, "spine-outage") {
		t.Fatalf("failing report lacks the shrunken schedule:\n%s", out)
	}
}

// TestFabricSpineOutageScheduleReplays replays a handcrafted two-outage
// schedule (one spine, one leaf) at a realistic scale and checks the outcome
// invariants directly — the soak path without the random draw.
func TestFabricSpineOutageScheduleReplays(t *testing.T) {
	cfg := chaos.FabricSoakConfig{Seed: 11}
	sched := chaos.Schedule{
		{Kind: chaos.EvSpineOutage, Addr: netsim.SpineAddr(0), StartMil: 300, DurMil: 150},
		{Kind: chaos.EvLeafOutage, Addr: netsim.LeafAddr(2), StartMil: 600, DurMil: 150},
	}
	scale, err := chaos.FabricGoldenScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := chaos.RunFabricSchedule(cfg, sched, scale)
	if !out.OK() {
		t.Fatalf("handcrafted schedule violated an invariant: %s", out.Violation)
	}
	out2 := chaos.RunFabricSchedule(cfg, sched, scale)
	if out != out2 {
		t.Fatalf("schedule replay diverged:\n%+v\n%+v", out, out2)
	}
}
