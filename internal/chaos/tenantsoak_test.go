package chaos

import (
	"testing"
)

func TestTenantSoakVictimKilledOthersExact(t *testing.T) {
	// A hand-written hole far longer than the retry budget: the victim's
	// stream must abort, and every other tenant must finish exactly.
	cfg := TenantSoakConfig{Seed: 41, Retries: 2}.withDefaults()
	scale, err := tenantGoldenScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{{Kind: EvLinkBlackhole, StartMil: 200, DurMil: 500}}
	out := RunTenantSchedule(cfg, sched, scale)
	if !out.OK() {
		t.Fatalf("isolation violated: %s", out.Violation)
	}
	if !out.VictimAborted {
		t.Fatal("a hole of half the task length against 2 retries must abort the victim")
	}
}

func TestTenantSoakEndToEnd(t *testing.T) {
	rep, err := TenantSoak(TenantSoakConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("tenant soak failed:\n%s", rep)
	}
	if len(rep.Schedule) == 0 {
		t.Fatal("generated schedule is empty; the soak exercised nothing")
	}
}

func TestTenantSoakDeterministic(t *testing.T) {
	cfg := TenantSoakConfig{Seed: 13}.withDefaults()
	scale, err := tenantGoldenScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := GenerateTenantSchedule(cfg)
	a := RunTenantSchedule(cfg, sched, scale)
	b := RunTenantSchedule(cfg, sched, scale)
	if a != b {
		t.Fatalf("two identical replays diverged: %+v vs %+v", a, b)
	}
}

func TestShrinkWithMinimizes(t *testing.T) {
	// ShrinkWith against a synthetic predicate: the failure needs exactly
	// the two host-3 events, so everything else must be elided.
	sched := Schedule{
		{Kind: EvHostStall, Host: 1, StartMil: 100, DurMil: 50},
		{Kind: EvLinkBlackhole, Host: 3, StartMil: 200, DurMil: 50},
		{Kind: EvLinkDegrade, Host: 2, StartMil: 300, DurMil: 50},
		{Kind: EvLinkBlackhole, Host: 3, StartMil: 400, DurMil: 50},
		{Kind: EvSwitchOutage, StartMil: 500, DurMil: 50},
	}
	fails := func(s Schedule) bool {
		n := 0
		for _, ev := range s {
			if ev.Host == 3 {
				n++
			}
		}
		return n >= 2
	}
	min, runs := ShrinkWith(fails, sched)
	if len(min) != 2 || min[0].Host != 3 || min[1].Host != 3 {
		t.Fatalf("shrunk to %v, want the two host-3 events", min)
	}
	if runs == 0 {
		t.Fatal("replay count not tracked")
	}
	if !fails(min) {
		t.Fatal("shrunk schedule no longer fails")
	}
}

func TestShrinkWithEmptyScheduleFailure(t *testing.T) {
	min, _ := ShrinkWith(func(Schedule) bool { return true }, Schedule{
		{Kind: EvSwitchOutage, StartMil: 100, DurMil: 50},
	})
	if len(min) != 0 {
		t.Fatalf("base-config failure must shrink to the empty schedule, got %v", min)
	}
}

func TestGenerateTenantScheduleWindowsDisjoint(t *testing.T) {
	sched := GenerateTenantSchedule(TenantSoakConfig{Seed: 3, Events: 5})
	for i := 1; i < len(sched); i++ {
		prevEnd := sched[i-1].StartMil + sched[i-1].DurMil
		if sched[i].StartMil < prevEnd {
			t.Fatalf("windows %d and %d overlap: %v", i-1, i, sched)
		}
	}
	if len(sched) == 0 {
		t.Fatal("no windows drawn")
	}
}
