package chaos_test

// Correctness-invariant tests: every scripted fault scenario must produce an
// aggregation result identical to the fault-free golden run on the same seed
// and workload, and the failure-model telemetry (degraded time, re-attach,
// replays, bounded retries) must reflect what the script injected.

import (
	"testing"
	"time"

	"repro/ask"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

const (
	testSenders = 2
	testTuples  = 40_000
	testSeed    = 7
)

func failoverOptions() ask.Options {
	c := core.DefaultConfig()
	c.ShadowCopy = false // failover replay cannot attribute swap fetches
	c.Failover = true
	return ask.Options{Hosts: testSenders + 1, Config: c, Seed: testSeed}
}

func buildTask() (core.TaskSpec, map[core.HostID]core.Stream, core.Result) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i := 0; i < testSenders; i++ {
		h := core.HostID(i + 1)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(512, testTuples, testSeed+int64(h))
		streams[h] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	return spec, streams, want
}

// goldenElapsed runs the fault-free task once and returns its duration, the
// timing scale the scenarios use to land faults mid-task.
func goldenElapsed(t *testing.T) time.Duration {
	t.Helper()
	spec, streams, want := buildTask()
	cl, err := ask.NewCluster(failoverOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("golden run wrong: %s", res.Result.Diff(want, 5))
	}
	if res.Degraded != 0 {
		t.Fatalf("golden run reports degraded time %v", res.Degraded)
	}
	return time.Duration(res.Elapsed)
}

func TestEveryScenarioMatchesGolden(t *testing.T) {
	scale := goldenElapsed(t)
	spec, _, want := buildTask()
	for _, sc := range chaos.Scenarios(spec.ID, spec.Receiver, spec.Senders[0]) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cl, err := ask.NewCluster(failoverOptions())
			if err != nil {
				t.Fatal(err)
			}
			orch := chaos.New(cl)
			sc.Inject(orch, scale)
			_, streams, _ := buildTask()
			res, err := cl.Aggregate(spec, streams)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Result.Equal(want) {
				t.Fatalf("scenario diverged from golden: %s", res.Result.Diff(want, 5))
			}
			if len(orch.Log()) == 0 {
				t.Fatal("scenario injected no events")
			}
		})
	}
}

func TestSwitchRebootDegradesAndReattaches(t *testing.T) {
	// A mid-stream switch outage: the result must still match the fault-free
	// run, the task must report non-zero degraded (host-only) time, senders
	// must replay their history to reconcile lost in-switch state, and the
	// switch's per-task aggregation counter must resume increasing after the
	// reboot — the re-attach.
	spec, streams, want := buildTask()
	cl, err := ask.NewCluster(failoverOptions())
	if err != nil {
		t.Fatal(err)
	}
	orch := chaos.New(cl)
	const crashAt, rebootAt = 300 * time.Microsecond, 400 * time.Microsecond
	orch.SwitchOutage(ask.TheSwitch, crashAt, rebootAt-crashAt)
	var aggAtReboot int64 = -1
	cl.Sim.At(cl.Sim.Now().Add(rebootAt+time.Microsecond), func() {
		aggAtReboot = cl.Switch.TaskStatsOf(spec.ID).TuplesAggregated
	})
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("reboot run diverged: %s", res.Result.Diff(want, 5))
	}
	if res.Degraded <= 0 {
		t.Fatalf("Degraded = %v, want > 0", res.Degraded)
	}
	if aggAtReboot <= 0 {
		t.Fatalf("no switch aggregation before the crash (aggAtReboot=%d); retune crash time", aggAtReboot)
	}
	final := cl.Switch.TaskStatsOf(spec.ID).TuplesAggregated
	if final <= aggAtReboot {
		t.Fatalf("switch aggregation did not resume after reboot: %d at reboot, %d final", aggAtReboot, final)
	}
	if cl.Switch.Epoch() != 2 || cl.Switch.Stats().Reboots != 1 {
		t.Fatalf("switch epoch/reboots = %d/%d", cl.Switch.Epoch(), cl.Switch.Stats().Reboots)
	}
	var replays int64
	var sawEpoch, sawDegraded bool
	for h := core.HostID(0); h < core.HostID(testSenders+1); h++ {
		fs := cl.Daemon(h).FailoverStats()
		replays += fs.ReplaysSent
		sawEpoch = sawEpoch || fs.EpochChanges > 0
		sawDegraded = sawDegraded || fs.DegradedTime > 0
		if cl.Daemon(h).Epoch() != 2 {
			t.Fatalf("host %d never observed epoch 2", h)
		}
		if cl.Daemon(h).Degraded() {
			t.Fatalf("host %d still degraded after recovery", h)
		}
	}
	if replays == 0 || !sawEpoch || !sawDegraded {
		t.Fatalf("failover telemetry missing: replays=%d epoch=%v degraded=%v", replays, sawEpoch, sawDegraded)
	}
}

func TestChaosRunsAreDeterministic(t *testing.T) {
	spec, _, _ := buildTask()
	run := func() (time.Duration, int64) {
		cl, err := ask.NewCluster(failoverOptions())
		if err != nil {
			t.Fatal(err)
		}
		orch := chaos.New(cl)
		// Loss plus an outage: both rng-driven fault paths in one run.
		orch.LinkDegrade(0, time.Millisecond, spec.Senders[0], netsim.Fault{LossProb: 0.1})
		orch.SwitchOutage(ask.TheSwitch, 250*time.Microsecond, 150*time.Microsecond)
		_, streams, _ := buildTask()
		res, err := cl.Aggregate(spec, streams)
		if err != nil {
			t.Fatal(err)
		}
		return time.Duration(res.Elapsed), cl.Switch.TaskStatsOf(spec.ID).TuplesAggregated
	}
	e1, a1 := run()
	e2, a2 := run()
	if e1 != e2 || a1 != a2 {
		t.Fatalf("identical seeds diverged: elapsed %v vs %v, aggregated %d vs %d", e1, e2, a1, a2)
	}
}

func TestRegionRevocationDrainsExactlyOnce(t *testing.T) {
	scale := goldenElapsed(t)
	spec, streams, want := buildTask()
	cl, err := ask.NewCluster(failoverOptions())
	if err != nil {
		t.Fatal(err)
	}
	orch := chaos.New(cl)
	orch.RevokeRegion(scale*2/5, spec.ID, spec.Receiver)
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("revocation run diverged: %s", res.Result.Diff(want, 5))
	}
	if cl.Switch.Stats().Revocations != 1 {
		t.Fatalf("Revocations = %d", cl.Switch.Stats().Revocations)
	}
	// Aggregation stopped at revocation: strictly less in-switch work than
	// the fault-free run (which absorbs the entire stream).
	if agg := res.Switch.TuplesAggregated; agg <= 0 || agg >= int64(testSenders)*testTuples {
		t.Fatalf("TuplesAggregated = %d, want partial absorption", agg)
	}
	if res.Recv.Degraded <= 0 {
		t.Fatalf("receiver task Degraded = %v, want > 0 (post-revocation host-only time)", res.Recv.Degraded)
	}
}

func TestBoundedRetriesAbortSenderStream(t *testing.T) {
	// A link that stays dark longer than the retry budget must abort the
	// sender's stream with an error instead of retrying forever. Failover is
	// off (no probe machinery), so the simulation quiesces with the receiver
	// still waiting — exactly the degradation ladder's final rung.
	c := core.DefaultConfig()
	c.MaxRetries = 3
	cl, err := ask.NewCluster(ask.Options{Hosts: 2, Config: c, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orch := chaos.New(cl)
	// Let task setup finish, then cut the sender's link until well past the
	// retry budget (3 retries x 100µs RTO), healing late so control-channel
	// retransmissions can drain and the simulation quiesces.
	orch.LinkBlackhole(300*time.Microsecond, 20*time.Millisecond, 1)
	w := workload.Uniform(256, 30_000, 3)
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}, Op: core.OpSum}
	pt, err := cl.StartTask(spec, map[core.HostID]core.Stream{1: w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	cl.Sim.Run(0)
	if _, err := pt.Get(); err == nil {
		t.Fatal("task completed despite an aborted sender stream")
	}
	st := cl.Daemon(1).ChannelStats()
	var aborts int64
	for _, cs := range st {
		aborts += cs.Aborts
	}
	if aborts == 0 {
		t.Fatal("no channel recorded a transport abort")
	}
}

func TestBackToBackOutagesDoNotDoubleCount(t *testing.T) {
	// Regression: the soak harness (seed 9, shrunk to exactly these two
	// outages) caught a replay double-count. The second reboot lands before
	// the senders notice the first, so the first recovery generation's
	// RegisterFlowAt RPC lands on the NEWER incarnation (detection lag).
	// Data transmitted after that registration is absorbed into the live
	// region — which teardown will fetch — yet a naive replay of the full
	// retained history resends those packets as TypeReplay, and the receiver
	// (which never claimed them: the switch absorbed them) merges them a
	// second time. The fix tags every history record with the registration
	// epoch at first transmission and skips records whose incarnation is
	// still alive at replay time.
	scale := 778044 * time.Nanosecond
	frac := func(m int64) time.Duration { return scale * time.Duration(m) / 1000 }
	c := core.DefaultConfig()
	c.ShadowCopy = false
	c.Failover = true
	cl, err := ask.NewCluster(ask.Options{Hosts: 3, Config: c, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	orch := chaos.New(cl)
	orch.SwitchOutage(ask.TheSwitch, frac(94), frac(153-94))
	orch.SwitchOutage(ask.TheSwitch, frac(342), frac(466-342))
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum, Senders: []core.HostID{1, 2}}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i := 1; i <= 2; i++ {
		w := workload.Uniform(512, 30_000, 9+int64(i))
		streams[core.HostID(i)] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("back-to-back outages diverged (replay double-count?): %s", res.Result.Diff(want, 5))
	}
	if got := cl.Switch.Stats().Reboots; got != 2 {
		t.Fatalf("expected 2 reboots, got %d", got)
	}
	for h := core.HostID(0); h <= 2; h++ {
		if fs := cl.Daemon(h).FailoverStats(); fs.Reattaches == 0 {
			t.Fatalf("host %d never completed recovery", h)
		}
	}
}

func TestBoundedRetriesAbortUnderTotalCorruption(t *testing.T) {
	// The corruption twin of the blackhole abort test: the sender's link
	// stays UP but damages every byte it carries (CorruptProb=1), so frames
	// keep arriving and keep being quarantined by the end-to-end checksum —
	// including the ACKs flowing back. At the transport layer sustained
	// corruption must be indistinguishable from loss: the bounded retry
	// budget exhausts and the stream aborts instead of spinning forever on
	// an undetectably-poisoned link.
	c := core.DefaultConfig()
	c.MaxRetries = 3
	cl, err := ask.NewCluster(ask.Options{Hosts: 2, Config: c, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orch := chaos.New(cl)
	orch.LinkDegrade(300*time.Microsecond, 20*time.Millisecond, 1, netsim.Fault{CorruptProb: 1})
	w := workload.Uniform(256, 30_000, 3)
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}, Op: core.OpSum}
	pt, err := cl.StartTask(spec, map[core.HostID]core.Stream{1: w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	cl.Sim.Run(0)
	if _, err := pt.Get(); err == nil {
		t.Fatal("task completed despite a fully-corrupted sender link")
	}
	var aborts int64
	for _, cs := range cl.Daemon(1).ChannelStats() {
		aborts += cs.Aborts
	}
	if aborts == 0 {
		t.Fatal("no channel recorded a transport abort")
	}
	// The quarantine — not silent loss — must be what starved the window:
	// the switch saw and dropped the damaged uplink frames, and the sender
	// saw and dropped damaged frames (corrupted ACKs) coming back.
	if got := cl.Switch.Stats().CorruptDropped; got == 0 {
		t.Fatal("switch quarantined nothing; corruption path not exercised")
	}
	if got := cl.Daemon(1).Stats().CorruptDropped; got == 0 {
		t.Fatal("sender host quarantined nothing; return-path corruption not exercised")
	}
}
