package hostd

import (
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/window"
	"repro/internal/wire"
)

// sendTask is one application stream queued on a data channel.
type sendTask struct {
	id       core.TaskID
	receiver core.HostID
	stream   core.Stream
	done     *sim.Signal
	finished bool
}

// SendHandle lets the sending application wait for its stream to be fully
// aggregated and acknowledged (data + FIN).
type SendHandle struct{ t *sendTask }

// Wait blocks until the task's FIN is acknowledged.
func (h *SendHandle) Wait(p *sim.Proc) {
	for !h.t.finished {
		p.Wait(h.t.done)
	}
}

// Done reports whether the stream completed.
func (h *SendHandle) Done() bool { return h.t.finished }

// dataChannel is one duplex persistent channel: a send loop draining queued
// tasks through the sliding window, and a receive loop processing inbound
// flow packets, each charged to the channel's CPU thread.
type dataChannel struct {
	d    *Daemon
	flow core.FlowKey
	win  *window.Sender

	queue    []*sendTask
	queueSig *sim.Signal
	curDst   core.HostID

	rxQ   []*netsim.Frame
	rxSig *sim.Signal

	txThread *cpumodel.Thread
	rxThread *cpumodel.Thread
}

func newDataChannel(d *Daemon, flow core.FlowKey) *dataChannel {
	ch := &dataChannel{
		d:        d,
		flow:     flow,
		queueSig: sim.NewSignal(d.sim),
		rxSig:    sim.NewSignal(d.sim),
		txThread: d.cpu.NewThread(),
		rxThread: d.cpu.NewThread(),
	}
	ch.win = window.NewSender(d.sim, d.cfg.Window, d.cfg.RetransmitTimeout, ch.transmit)
	if d.cfg.CongestionControl {
		ch.win.EnableCongestionControl()
	}
	d.sim.Spawn("tx-"+flow.String(), ch.txLoop)
	d.sim.Spawn("rx-"+flow.String(), ch.rxLoop)
	return ch
}

// transmit puts a window packet on the wire toward the current task's
// receiver (tasks are served FIFO and serialized per channel, so curDst is
// stable while any packet of a task is in flight).
func (ch *dataChannel) transmit(pkt *wire.Packet) {
	good := 0
	switch pkt.Type {
	case wire.TypeData:
		good = pkt.LiveTuples() * 2 * ch.d.cfg.KPartBytes
	case wire.TypeLongKey:
		for _, kv := range pkt.Long {
			good += len(kv.Key) + 8
		}
	}
	ch.d.sendFrame(ch.curDst, pkt, good)
}

// enqueue queues a task for sending.
func (ch *dataChannel) enqueue(t *sendTask) {
	ch.queue = append(ch.queue, t)
	ch.queueSig.Fire()
}

// txLoop serves queued tasks in FIFO order: packetize, window-send, FIN.
func (ch *dataChannel) txLoop(p *sim.Proc) {
	for {
		for len(ch.queue) == 0 {
			p.Wait(ch.queueSig)
		}
		task := ch.queue[0]
		ch.queue = ch.queue[1:]
		ch.curDst = task.receiver

		pz := newPacketizer(ch.d.layout, task.stream)
		for {
			pkt, tuples, ok := pz.next()
			if !ok {
				break
			}
			// PacketIOCost covers the whole per-packet lifecycle on the
			// channel thread — shared-memory read, slot marshalling
			// (SIMD-copied in batches on real DPDK), descriptor work, and
			// ACK bookkeeping — keeping the calibrated 9.35 Mpps per
			// channel independent of tuples per packet (Fig. 8(a)'s
			// PPS-bound linear region).
			ch.txThread.Run(p, cpumodel.PacketIOCost)
			_ = tuples
			// Bounded TX ring: never queue more wire time at the NIC than
			// a fraction of the retransmission timeout, or acknowledgments
			// cannot outrun spurious timeouts (DPDK descriptor-ring
			// backpressure). Drain with hysteresis — down to half the
			// bound, not to empty — so the wire never idles at line rate.
			if bound := ch.d.cfg.RetransmitTimeout / 4; ch.d.net.Uplink(ch.d.host).Backlog() > bound {
				p.SleepUntil(ch.d.net.Uplink(ch.d.host).NextFree().Add(-bound / 2))
			}
			pkt.Task = task.id
			pkt.Flow = ch.flow
			ch.d.stats.PacketsSent++
			ch.d.stats.TuplesSent += int64(tuples)
			if pkt.Type == wire.TypeLongKey {
				ch.d.stats.LongTuplesSent += int64(tuples)
			} else {
				ch.d.stats.SlotFill[pkt.Bitmap.Count()]++
			}
			ch.win.SendBlocking(p, pkt)
		}
		ch.win.WaitIdle(p)

		// FIN: stream complete and fully acknowledged (§3.1 teardown).
		fin := &wire.Packet{Type: wire.TypeFin, Task: task.id, Flow: ch.flow}
		ch.txThread.Run(p, cpumodel.PacketIOCost)
		ch.win.SendBlocking(p, fin)
		ch.win.WaitIdle(p)

		task.finished = true
		task.done.Fire()
	}
}

// enqueueRx queues an inbound frame for receive-side processing.
func (ch *dataChannel) enqueueRx(f *netsim.Frame) {
	ch.rxQ = append(ch.rxQ, f)
	ch.rxSig.Fire()
}

// rxLoop processes inbound flow packets on the channel thread.
func (ch *dataChannel) rxLoop(p *sim.Proc) {
	for {
		for len(ch.rxQ) == 0 {
			p.Wait(ch.rxSig)
		}
		f := ch.rxQ[0]
		ch.rxQ = ch.rxQ[1:]
		ch.d.processInbound(p, ch, f)
	}
}
