package hostd

import (
	"sort"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/window"
	"repro/internal/wire"
)

// sendTask is one application stream queued on a data channel. Exactly one
// of stream/timed is set: timed streams are paced on the sim clock (trace
// replay), plain streams are drained back-to-back.
type sendTask struct {
	id       core.TaskID
	receiver core.HostID
	stream   core.Stream
	timed    core.TimedStream
	// part is the task's keyspace band from the receiver's notification
	// (zero = whole keyspace): the packetizer routes only this band's keys
	// into switch slots.
	part     keyspace.Partition
	done     *sim.Signal
	finished bool
	// err records a transport abort (MaxRetries exhausted); the stream was
	// not fully delivered.
	err error
	// history retains every sent data packet for failover replay (failover
	// mode only); released when the receiver confirms the task result.
	history []historyRec
}

// historyRec is one retained data packet plus the switch incarnation whose
// reliability state covered its first transmission. absorbEpoch is the
// channel's registration epoch at send time: the only incarnation that can
// have absorbed the packet's tuples into SRAM (a rebooted switch classifies
// old sequence numbers as observed and forwards them whole; an unregistered
// flow — absorbEpoch 0 — is forwarded whole unconditionally). Replay after a
// reboot must skip records whose absorbEpoch is the incarnation the flow just
// re-registered on: that state did not die, so the absorbed tuples are still
// in the live region the receiver will fetch at teardown, and replaying them
// would double-count.
type historyRec struct {
	pkt         *wire.Packet
	absorbEpoch uint32
}

// SendHandle lets the sending application wait for its stream to be fully
// aggregated and acknowledged (data + FIN).
type SendHandle struct{ t *sendTask }

// Wait blocks until the task's FIN is acknowledged (or the transport
// aborts; check Err).
func (h *SendHandle) Wait(p *sim.Proc) {
	for !h.t.finished {
		p.Wait(h.t.done)
	}
}

// Done reports whether the stream completed (successfully or not).
func (h *SendHandle) Done() bool { return h.t.finished }

// Err returns the transport abort error, or nil if the stream was fully
// delivered.
func (h *SendHandle) Err() error { return h.t.err }

// dataChannel is one duplex persistent channel: a send loop draining queued
// tasks through the sliding window, and a receive loop processing inbound
// flow packets, each charged to the channel's CPU thread.
type dataChannel struct {
	d    *Daemon
	flow core.FlowKey
	win  *window.Sender

	queue    []*sendTask
	queueSig *sim.Signal
	curDst   core.HostID

	// retained maps tasks whose history may still need replaying after a
	// switch reboot (failover mode only).
	retained map[core.TaskID]*sendTask
	// recoverReq, when non-zero, asks txLoop to run doRecover for that
	// recovery generation at its next safe point (set synchronously by
	// observeEpoch; recovery runs inline so no concurrent send can race it).
	recoverReq   uint32
	recoveredGen uint32
	// regEpoch is the epoch of the switch incarnation this channel's flow is
	// currently registered on (0 = unregistered, e.g. flow table full after a
	// reboot). Maintained by the registration RPCs, which return the live
	// incarnation's epoch; recorded per packet in sendTask.history.
	regEpoch uint32

	rxQ   []*netsim.Frame
	rxSig *sim.Signal

	txThread *cpumodel.Thread
	rxThread *cpumodel.Thread
}

func newDataChannel(d *Daemon, flow core.FlowKey) *dataChannel {
	ch := &dataChannel{
		d:        d,
		flow:     flow,
		queueSig: sim.NewSignal(d.sim),
		rxSig:    sim.NewSignal(d.sim),
		retained: make(map[core.TaskID]*sendTask),
		txThread: d.cpu.NewThread(),
		rxThread: d.cpu.NewThread(),
	}
	ch.win = window.NewSender(d.sim, d.cfg.Window, d.cfg.RetransmitTimeout, ch.transmit)
	ch.win.Instrument(d.tel, flow.String())
	if d.cfg.CongestionControl {
		ch.win.EnableCongestionControl()
	}
	if d.cfg.MaxRetries > 0 {
		ch.win.SetMaxRetries(d.cfg.MaxRetries)
	}
	if d.cfg.Failover {
		ch.win.EnableBackoff()
	}
	d.sim.Spawn("tx-"+flow.String(), ch.txLoop)
	d.sim.Spawn("rx-"+flow.String(), ch.rxLoop)
	return ch
}

// transmit puts a window packet on the wire toward the current task's
// receiver (tasks are served FIFO and serialized per channel — including
// inline failover replay — so curDst is stable while any packet of a task
// is in flight).
func (ch *dataChannel) transmit(pkt *wire.Packet) {
	good := 0
	switch pkt.Type {
	case wire.TypeData:
		good = pkt.LiveTuples() * 2 * ch.d.cfg.KPartBytes
	case wire.TypeLongKey:
		for _, kv := range pkt.Long {
			good += len(kv.Key) + 8
		}
	}
	ch.d.sendFrame(ch.curDst, pkt, good)
}

// enqueue queues a task for sending.
func (ch *dataChannel) enqueue(t *sendTask) {
	ch.queue = append(ch.queue, t)
	ch.queueSig.Fire()
}

// maybeRecover runs the inline failover recovery if one is pending. It is
// called only from txLoop (between sends), so the window is never driven by
// two processes at once.
func (ch *dataChannel) maybeRecover(p *sim.Proc) {
	if ch.recoverReq != 0 {
		ch.doRecover(p)
	}
}

// txLoop serves queued tasks in FIFO order: packetize, window-send, FIN.
func (ch *dataChannel) txLoop(p *sim.Proc) {
	for {
		for len(ch.queue) == 0 {
			ch.maybeRecover(p)
			// Re-check before parking: recovery blocks, and an enqueue (or a
			// fresh recovery request) signalled during it would be lost if we
			// waited unconditionally.
			if len(ch.queue) != 0 || ch.recoverReq != 0 {
				continue
			}
			p.Wait(ch.queueSig)
		}
		ch.maybeRecover(p)
		if len(ch.queue) == 0 {
			continue
		}
		task := ch.queue[0]
		ch.queue = ch.queue[1:]
		ch.curDst = task.receiver
		if ch.d.failover {
			ch.retained[task.id] = task
		}

		var pz *packetizer
		if task.timed != nil {
			// Timed replay: arrival offsets anchor at this moment — the
			// channel is the task's ingress, so "stream start" is when the
			// channel begins serving it.
			stream, stall := paceStream(p, task.timed)
			pz = newPacedPacketizer(ch.d.layout, stream, stall)
		} else {
			pz = newPacketizer(ch.d.layout, task.stream)
		}
		pz.part = task.part
		for {
			pkt, tuples, ok := pz.next()
			if !ok {
				break
			}
			// PacketIOCost covers the whole per-packet lifecycle on the
			// channel thread — shared-memory read, slot marshalling
			// (SIMD-copied in batches on real DPDK), descriptor work, and
			// ACK bookkeeping — keeping the calibrated 9.35 Mpps per
			// channel independent of tuples per packet (Fig. 8(a)'s
			// PPS-bound linear region).
			ch.txThread.Run(p, cpumodel.PacketIOCost)
			_ = tuples
			// Bounded TX ring: never queue more wire time at the NIC than
			// a fraction of the retransmission timeout, or acknowledgments
			// cannot outrun spurious timeouts (DPDK descriptor-ring
			// backpressure). Drain with hysteresis — down to half the
			// bound, not to empty — so the wire never idles at line rate.
			if bound := ch.d.cfg.RetransmitTimeout / 4; ch.d.net.Uplink(ch.d.host).Backlog() > bound {
				p.SleepUntil(ch.d.net.Uplink(ch.d.host).NextFree().Add(-bound / 2))
			}
			pkt.Task = task.id
			pkt.Flow = ch.flow
			ch.d.met.packetsSent.Inc()
			ch.d.met.tuplesSent.Add(int64(tuples))
			ch.d.met.batchTuples.Record(int64(tuples))
			if pkt.Type == wire.TypeLongKey {
				ch.d.met.longTuplesSent.Add(int64(tuples))
			} else {
				ch.d.slotFillCounter(pkt.Bitmap.Count()).Inc()
			}
			if err := ch.win.SendBlocking(p, pkt); err != nil {
				task.err = err
				break
			}
			if ch.d.failover && pkt.Type == wire.TypeData {
				// The sender-side packet struct is never mutated by the
				// network (frames clone at delivery), so the original slots
				// and liveness bitmap are intact for replay. regEpoch tags
				// the incarnation whose reliability state covered the first
				// transmission (see historyRec).
				task.history = append(task.history, historyRec{pkt, ch.regEpoch})
			}
			ch.maybeRecover(p)
			// Recovery may have changed curDst while replaying other
			// retained tasks; restore it for this task's next packet.
			ch.curDst = task.receiver
		}
		if task.err == nil {
			if err := ch.win.WaitIdle(p); err != nil {
				task.err = err
			}
		}

		if task.err == nil {
			// Replay first if a reboot interleaved, so the FIN generation
			// below post-dates every replayed packet (teardown ordering).
			ch.maybeRecover(p)
			ch.curDst = task.receiver
			// FIN: stream complete and fully acknowledged (§3.1 teardown).
			// OrigSeq carries the FIN generation — the epoch the sender
			// observed when it cut the FIN.
			fin := &wire.Packet{Type: wire.TypeFin, Task: task.id, Flow: ch.flow, OrigSeq: ch.d.epoch}
			ch.txThread.Run(p, cpumodel.PacketIOCost)
			if err := ch.win.SendBlocking(p, fin); err != nil {
				task.err = err
			} else if err := ch.win.WaitIdle(p); err != nil {
				task.err = err
			}
		}
		if task.err != nil {
			// Transport abort: drop the in-flight packets and restore the
			// window so subsequent tasks on this channel still run. Sequence
			// numbers are not reused, so receiver dedup state stays valid.
			ch.win.Reset()
		}

		task.finished = true
		task.done.Fire()
	}
}

// doRecover replays this channel's retained history after a switch reboot
// (failover §recovery): drain the window, re-register the flow at its
// current sequence position, then resend every retained task's data packets
// as TypeReplay (host-only bypass) and re-FIN finished tasks. Runs inline on
// txLoop so it is the only driver of the window.
func (ch *dataChannel) doRecover(p *sim.Proc) {
	for ch.recoverReq != 0 {
		gen := ch.recoverReq
		ch.recoverReq = 0
		// Drain in-flight packets of the old epoch first: they keep
		// retransmitting and, with the flow unregistered on the rebooted
		// switch, stream through whole to the receiver, which merges and
		// ACKs them. Re-registering before they drain would misclassify
		// them against fresh reliability state.
		if err := ch.win.WaitIdle(p); err != nil {
			ch.win.Reset()
		}
		if gen != ch.d.recoveryGen {
			ch.recoverReq = ch.d.recoveryGen
			continue
		}
		p.Sleep(cpumodel.ControlRPCLatency)
		if ep, err := ch.d.ctrl.RegisterFlowAt(ch.flow, ch.win.NextSeq()); err != nil {
			// Flow table full on the rebooted switch: stay unregistered.
			// Packets forward host-only; correctness is unaffected.
			ch.regEpoch = 0
		} else {
			ch.regEpoch = ep
			// The RPC may have landed on an incarnation NEWER than the one
			// this recovery generation was triggered by (the switch rebooted
			// again before the daemon noticed). Feed the epoch back so the
			// daemon schedules the follow-up recovery now instead of waiting
			// for a stamped packet.
			ch.d.observeEpoch(ep)
		}
		saved := ch.curDst
		ids := make([]core.TaskID, 0, len(ch.retained))
		for id := range ch.retained {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			t := ch.retained[id]
			ch.curDst = t.receiver
			for _, rec := range t.history {
				if rec.absorbEpoch != 0 && rec.absorbEpoch == ch.regEpoch {
					// First transmitted while the flow was registered on the
					// incarnation we just re-registered on: the switch state
					// that absorbed it did not die. Its absorbed tuples are
					// still in the live region (fetched at teardown) and its
					// residue was claimed at the receiver — replaying here
					// would double-count.
					continue
				}
				orig := rec.pkt
				ch.txThread.Run(p, cpumodel.PacketIOCost)
				rp := &wire.Packet{
					Type:    wire.TypeReplay,
					Task:    t.id,
					Flow:    ch.flow,
					OrigSeq: orig.Seq,
					Bitmap:  orig.Bitmap,
					Slots:   orig.Slots,
				}
				if err := ch.win.SendBlocking(p, rp); err != nil {
					break
				}
				ch.d.met.replaysSent.Inc()
			}
			if t.finished && t.err == nil {
				// Re-FIN after the replays are acknowledged so the receiver
				// processes the new-generation FIN last.
				if err := ch.win.WaitIdle(p); err == nil {
					fin := &wire.Packet{Type: wire.TypeFin, Task: t.id, Flow: ch.flow, OrigSeq: ch.d.epoch}
					ch.txThread.Run(p, cpumodel.PacketIOCost)
					_ = ch.win.SendBlocking(p, fin)
				}
			}
			if err := ch.win.WaitIdle(p); err != nil {
				ch.win.Reset()
			}
		}
		ch.curDst = saved
		ch.d.channelRecovered(ch, gen)
	}
}

// enqueueRx queues an inbound frame for receive-side processing.
func (ch *dataChannel) enqueueRx(f *netsim.Frame) {
	ch.rxQ = append(ch.rxQ, f)
	ch.rxSig.Fire()
}

// rxLoop processes inbound flow packets on the channel thread.
func (ch *dataChannel) rxLoop(p *sim.Proc) {
	for {
		for len(ch.rxQ) == 0 {
			p.Wait(ch.rxSig)
		}
		f := ch.rxQ[0]
		ch.rxQ = ch.rxQ[1:]
		ch.d.processInbound(p, ch, f)
		// processInbound copies everything it keeps (residue bitmaps are
		// decoded into fresh storage, long-key strings are immutable), so
		// the frame and its packet can be recycled here.
		f.Release()
	}
}
