package hostd

import (
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/window"
	"repro/internal/wire"
)

// ctrlMsg wraps a control-channel message with its destination so the
// window's transmit callback can route (a control channel fans out to many
// hosts, unlike a data channel serving one task at a time).
type ctrlMsg struct {
	Dst  core.HostID
	Body any
}

// taskNotify announces a new aggregation task to a sender daemon (§3.1
// step ④): task ID, receiver address, and application context. Partition
// is the task's keyspace band (zero = whole keyspace) — senders must pack
// only keys the task's switch region actually aggregates.
type taskNotify struct {
	Task      core.TaskID
	Receiver  core.HostID
	Op        core.Op
	Partition keyspace.Partition
}

// taskRelease tells a sender daemon that the receiver's result for a task is
// final, so the sender may drop its retained failover replay history.
type taskRelease struct {
	Task core.TaskID
}

// ctrlChannel is the daemon's persistent control channel: one dedicated
// thread, reliable delivery via the same sliding-window machinery as data.
type ctrlChannel struct {
	d      *Daemon
	flow   core.FlowKey
	win    *window.Sender
	rxQ    []*netsim.Frame
	rxSig  *sim.Signal
	thread *cpumodel.Thread
}

// ctrlWindow is the control channel's (small) sliding window.
const ctrlWindow = 64

func newCtrlChannel(d *Daemon) *ctrlChannel {
	ch := &ctrlChannel{
		d:      d,
		flow:   core.FlowKey{Host: d.host, Channel: core.ChannelID(d.cfg.DataChannels)},
		rxSig:  sim.NewSignal(d.sim),
		thread: d.cpu.NewThread(),
	}
	// Control messages are far larger-timeout than data: they cross the
	// switch twice and are not latency critical.
	ch.win = window.NewSender(d.sim, ctrlWindow, 10*d.cfg.RetransmitTimeout, ch.transmit)
	ch.win.Instrument(d.tel, ch.flow.String())
	d.sim.Spawn("ctrl-"+ch.flow.String(), ch.rxLoop)
	return ch
}

func (ch *ctrlChannel) transmit(pkt *wire.Packet) {
	msg := pkt.Ctrl.(ctrlMsg)
	ch.d.sendFrame(msg.Dst, pkt, 0)
}

// send reliably delivers a control message (blocks for window space).
func (ch *ctrlChannel) send(p *sim.Proc, dst core.HostID, body any) {
	pkt := &wire.Packet{Type: wire.TypeCtrl, Flow: ch.flow, Ctrl: ctrlMsg{Dst: dst, Body: body}}
	ch.win.SendBlocking(p, pkt)
}

func (ch *ctrlChannel) enqueue(f *netsim.Frame) {
	ch.rxQ = append(ch.rxQ, f)
	ch.rxSig.Fire()
}

// rxLoop processes inbound control messages on the control thread.
func (ch *ctrlChannel) rxLoop(p *sim.Proc) {
	for {
		for len(ch.rxQ) == 0 {
			p.Wait(ch.rxSig)
		}
		f := ch.rxQ[0]
		ch.rxQ = ch.rxQ[1:]
		ch.process(p, f.Pkt)
		// process retains nothing from the packet (ctrl bodies are plain
		// values and the ack is a fresh packet), so the frame can go back
		// to the pool here.
		f.Release()
	}
}

func (ch *ctrlChannel) process(p *sim.Proc, pkt *wire.Packet) {
	verdict := ch.d.dedupFor(pkt.Flow).Observe(pkt.Seq)
	if verdict == window.Stale {
		return
	}
	ch.thread.Run(p, cpumodel.PacketIOCost)
	if verdict == window.Fresh {
		msg := pkt.Ctrl.(ctrlMsg)
		switch body := msg.Body.(type) {
		case taskNotify:
			ch.d.onNotify(body)
		case taskRelease:
			ch.d.onRelease(body.Task)
		default:
			// Unknown control bodies are ignored (forward compatibility).
		}
		// A small queueing delay stands in for the local message queue to
		// the application (§3.1 step ⑤).
		p.Sleep(time.Microsecond)
	}
	ack := wire.NewPacket()
	ack.Type = wire.TypeAck
	ack.AckFor = wire.TypeCtrl
	ack.Task = pkt.Task
	ack.Flow = pkt.Flow
	ack.Seq = pkt.Seq
	ch.d.sendOwned(pkt.Flow.Host, ack, 0)
}
