// Package hostd implements the ASK host daemon (§3.1): a per-server service
// that exchanges key-value data with applications through shared memory,
// packs tuples into multi-key packets following the ordered key-space
// partition (§3.2.2), drives the sliding-window reliable transport toward
// the switch (§3.3), aggregates residue tuples the switch could not absorb,
// triggers shadow-copy swaps (§3.4), and fetches and merges switch state at
// task teardown.
//
// A daemon runs one control channel and Config.DataChannels data channels.
// Channels are persistent: they are registered with the switch controller at
// boot and serve every task of the host's applications for the daemon's
// lifetime, each bound to one CPU-model thread (§4).
package hostd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/wire"
)

// Controller is the switch control-plane interface (implemented by
// internal/switchd, adapted in the public ask package).
type Controller interface {
	// RegisterFlow registers a fresh flow and returns the epoch of the
	// switch incarnation the registration landed on.
	RegisterFlow(fk core.FlowKey) (uint32, error)
	// RegisterFlowAt registers a flow whose next sequence number is start —
	// the re-attach path after a switch reboot, where the flow's window is
	// mid-stream rather than at zero. Like RegisterFlow it returns the live
	// incarnation's epoch: control RPCs land on whatever switch is up NOW,
	// which may be newer than the reboot the caller is recovering from
	// (detection lag), and the sender must know which incarnation will be
	// absorbing its packets to replay correctly after the next reboot.
	RegisterFlowAt(fk core.FlowKey, start uint32) (uint32, error)
	// AllocRegion reserves switch memory for a task and describes the
	// resulting allocation. Single-switch controllers return the zero
	// AllocInfo: full keyspace, fetch from the first-hop switch.
	AllocRegion(spec core.TaskSpec) (AllocInfo, error)
	FreeRegion(task core.TaskID) error
}

// chRange is a tenant's dedicated slice of the daemon's data channels.
type chRange struct{ lo, n int }

// AllocInfo describes a task's switch allocation to the receiver daemon.
// The zero value reproduces the single-switch behaviour exactly.
type AllocInfo struct {
	// Partition is the task's keyspace band (multi-tenant fabrics); senders
	// pack only keys of this band into switch slots, the rest take the
	// long-key bypass. Zero = the whole keyspace.
	Partition keyspace.Partition
	// FetchFrom lists the aggregation points holding pieces of the task's
	// switch state — fabric addresses the receiver must fetch (and clear)
	// at teardown, e.g. the sender leaves plus the spine on a fat-tree.
	// Nil/empty = the legacy first-hop switch (requests addressed to the
	// receiver itself, consumed by the switch on the path).
	FetchFrom []core.HostID
}

// Stats counts daemon-level activity. It is a point-in-time view over
// the daemon's telemetry instruments (metrics.go).
type Stats struct {
	TuplesSent      int64 // tuples handed to the network (short+medium+long)
	LongTuplesSent  int64 // subset bypassing the switch
	PacketsSent     int64 // first transmissions of data/long-key packets
	ResidueTuples   int64 // tuples aggregated at this host as receiver
	SwitchTuples    int64 // tuples merged from switch fetches
	SwapsTriggered  int64
	PacketsReceived int64 // data/long-key packets processed as receiver
	// CorruptDropped counts inbound frames quarantined by the end-to-end
	// checksum check.
	CorruptDropped int64
	// SlotFill histograms transmitted data packets by live slot count
	// (bitmap population), the source of Fig. 8(b).
	SlotFill [65]int64
}

// Daemon is the per-host ASK service. Each Daemon is per-host (hence
// per-rack) state — a shard root for the parallel DES; frames leave it
// only through the HostFabric interface.
//
//askcheck:shard
type Daemon struct {
	sim    *sim.Simulation
	net    netsim.HostFabric
	cpu    *cpumodel.Host
	cfg    core.Config
	layout *keyspace.Layout
	host   core.HostID
	ctrl   Controller

	channels []*dataChannel
	ctrlCh   *ctrlChannel

	// codec decodes frames that arrive as damaged raw bytes (netsim
	// corruption faults); SkipVerify mirrors Config.DisableChecksumVerify.
	codec wire.Codec

	// flowDedup is the receive window per remote flow (shared across tasks;
	// channels are persistent and multiplex tasks, §3.3).
	flowDedup map[core.FlowKey]*window.HostDedup

	recvTasks map[core.TaskID]*recvTask
	sendReady map[core.TaskID]*sendTask // submitted locally, awaiting notify
	notified  map[core.TaskID]taskNotify

	// tenantCh maps a tenant to its dedicated data-channel range
	// (SetTenantChannels); nil means the legacy global task→channel hash.
	tenantCh map[core.TenantID]chRange

	fetchReqs  map[uint32]*fetchReq
	nextFetch  uint32
	taskSerial uint32

	// Telemetry (metrics.go): instruments live on reg; met caches the
	// hot-path pointers; tel is the sink handed to per-channel windows.
	reg     *telemetry.Registry
	tr      *telemetry.Tracer
	tel     telemetry.Sink
	hostLbl telemetry.Label
	met     hostMetrics

	// Failover state (failover.go). epoch starts at 1 and tracks the switch
	// incarnation; all other fields are idle unless cfg.Failover is set.
	failover      bool
	epoch         uint32
	degraded      bool
	degradedAt    sim.Time
	recovering    bool
	recoveryGen   uint32
	stalled       bool
	probeSig      *sim.Signal
	probeSeq      uint32
	probeReplySeq uint32
	activity      int
	activitySig   *sim.Signal
	chRecoverSig  *sim.Signal
	activeSends   map[core.TaskID]*sendTask
}

// New boots a daemon on host, attaches it to the network, and registers its
// persistent data channels with the switch controller. tel is the cluster
// observability sink; the zero value gives the daemon a private registry
// so the Stats views still work, with tracing disabled.
func New(s *sim.Simulation, net netsim.HostFabric, cpu *cpumodel.Host, cfg core.Config, host core.HostID, ctrl Controller, tel telemetry.Sink) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := keyspace.NewLayout(cfg)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		sim:          s,
		net:          net,
		cpu:          cpu,
		cfg:          cfg,
		layout:       layout,
		host:         host,
		ctrl:         ctrl,
		flowDedup:    make(map[core.FlowKey]*window.HostDedup),
		recvTasks:    make(map[core.TaskID]*recvTask),
		sendReady:    make(map[core.TaskID]*sendTask),
		notified:     make(map[core.TaskID]taskNotify),
		fetchReqs:    make(map[uint32]*fetchReq),
		codec:        wire.NewCodec(cfg.KPartBytes).WithSkipVerify(cfg.DisableChecksumVerify),
		failover:     cfg.Failover,
		epoch:        1,
		probeSig:     sim.NewSignal(s),
		activitySig:  sim.NewSignal(s),
		chRecoverSig: sim.NewSignal(s),
		activeSends:  make(map[core.TaskID]*sendTask),
	}
	d.tel = tel
	d.initMetrics(tel)
	net.AttachHost(host, d)
	for i := 0; i < cfg.DataChannels; i++ {
		fk := core.FlowKey{Host: host, Channel: core.ChannelID(i)}
		ep, err := ctrl.RegisterFlow(fk)
		if err != nil {
			return nil, fmt.Errorf("hostd: registering %v: %w", fk, err)
		}
		ch := newDataChannel(d, fk)
		ch.regEpoch = ep
		d.channels = append(d.channels, ch)
	}
	d.ctrlCh = newCtrlChannel(d)
	if d.failover {
		s.Spawn(fmt.Sprintf("probe-h%d", host), d.probeLoop)
	}
	return d, nil
}

// Host returns the daemon's host ID.
func (d *Daemon) Host() core.HostID { return d.host }

// Stats returns a snapshot of the daemon counters (atomic reads of the
// registry instruments).
func (d *Daemon) Stats() Stats {
	m := &d.met
	s := Stats{
		TuplesSent:      m.tuplesSent.Value(),
		LongTuplesSent:  m.longTuplesSent.Value(),
		PacketsSent:     m.packetsSent.Value(),
		ResidueTuples:   m.residueTuples.Value(),
		SwitchTuples:    m.switchTuples.Value(),
		SwapsTriggered:  m.swapsTriggered.Value(),
		PacketsReceived: m.packetsReceived.Value(),
		CorruptDropped:  m.corruptDropped.Value(),
	}
	for i, c := range m.slotFill {
		s.SlotFill[i] = c.Value() // nil counters read 0
	}
	return s
}

// Config returns the deployment configuration.
func (d *Daemon) Config() core.Config { return d.cfg }

// dedupFor returns the receive window for a remote flow.
func (d *Daemon) dedupFor(fk core.FlowKey) *window.HostDedup {
	dd, ok := d.flowDedup[fk]
	if !ok {
		dd = window.NewHostDedup(d.cfg.Window)
		d.flowDedup[fk] = dd
	}
	return dd
}

// HandleFrame implements netsim.HostHandler: classify and either handle
// inline (window bookkeeping — its CPU cost is folded into the originating
// packet's PacketIOCost, see cpumodel calibration) or queue for a channel
// thread (packet processing with real CPU cost).
func (d *Daemon) HandleFrame(f *netsim.Frame) {
	if d.stalled {
		f.Release() // crashed daemon: inbound frames are lost
		return
	}
	// End-to-end integrity check (§3.3 failure model): frames damaged in
	// flight arrive as raw bytes; a checksum failure quarantines the frame
	// before any field — including the epoch beacon — is interpreted. The
	// drop looks like a loss to the sender, whose retransmission (or the
	// replay protocol during failover) recovers the tuples.
	wasRaw := f.Pkt == nil && f.Raw != nil
	if wasRaw {
		pkt, err := d.codec.Decode(f.Raw)
		if err != nil {
			d.met.corruptDropped.Inc()
			if d.tr != nil {
				d.tr.EmitNote(telemetry.CompHostd, "corrupt_drop", 0, err.Error())
			}
			f.Release()
			return
		}
		// Only reachable with verification disabled (fault-injection hook)
		// or a CRC collision: the damaged bytes decoded into a packet.
		f.Pkt, f.Raw = pkt, nil
	}
	pkt := f.Pkt
	// Every switch-stamped packet doubles as an epoch beacon; a fresher
	// epoch triggers recovery synchronously, BEFORE the packet itself is
	// processed, so e.g. a post-reboot FIN never races its own invalidation.
	d.observeEpoch(pkt.Epoch)
	switch pkt.Type {
	case wire.TypeAck:
		switch pkt.AckFor {
		case wire.TypeSwap:
			if t := d.recvTasks[pkt.Task]; t != nil {
				t.onSwapAck(pkt.Seq)
			}
		case wire.TypeFetch:
			if fr := d.fetchReqs[pkt.Seq]; fr != nil {
				fr.cleared = true
				fr.progress.Fire()
			}
		case wire.TypeCtrl:
			d.ctrlCh.win.Ack(pkt.Seq)
		default: // data, long-key, FIN acks → the sender window
			if pkt.Flow.Host == d.host && int(pkt.Flow.Channel) < len(d.channels) {
				d.channels[pkt.Flow.Channel].win.Ack(pkt.Seq)
			}
		}
		f.Release() // handled inline; nothing retains the ACK
	case wire.TypeFetchReply:
		if fr := d.fetchReqs[pkt.Seq]; fr != nil {
			fr.addChunk(pkt)
		}
		// addChunk keeps only pkt.FetchEntries, which is GC-owned (the pool
		// recycles the Packet struct and its Slots array, never the entries).
		f.Release()
	case wire.TypeCtrl:
		d.ctrlCh.enqueue(f) // released by the ctrl rxLoop after processing
	case wire.TypeProbeReply:
		if window.SeqLess(d.probeReplySeq, pkt.Seq) {
			d.probeReplySeq = pkt.Seq
		}
		d.probeSig.Fire()
		f.Release()
	case wire.TypeData, wire.TypeLongKey, wire.TypeFin, wire.TypeReplay:
		// Acknowledge at the transport layer immediately — processing
		// happens asynchronously on a channel thread, and holding the ACK
		// behind CPU work would trip the sender's fine-grained 100 µs
		// timeout into spurious retransmissions whenever receive queues
		// build. Duplicates are still filtered at processing time, so
		// exactly-once aggregation is unaffected; the packet is owned by
		// the daemon once acknowledged.
		d.sendAck(pkt)
		// Spread receive processing across channel threads by flow.
		// (Released by the channel rxLoop after processInbound.)
		idx := (int(pkt.Flow.Host)*31 + int(pkt.Flow.Channel)) % len(d.channels)
		d.channels[idx].enqueueRx(f)
	default:
		if wasRaw {
			// Corruption forged a type a host never receives and
			// verification let it through: quarantine instead of crashing.
			d.met.corruptDropped.Inc()
			if d.tr != nil {
				d.tr.EmitNote(telemetry.CompHostd, "corrupt_drop", int64(pkt.Task), "forged type")
			}
			f.Release()
			return
		}
		// Swap/Fetch are switch-terminated and never reach a host.
		panic(fmt.Sprintf("hostd: unexpected packet %v at host %d", pkt.Type, d.host))
	}
}

// sendFrame transmits a packet from this host. The packet is RETAINED by
// the caller (window retransmission buffers, failover history): the link
// clones it at delivery. Packets nothing retains go through sendOwned.
func (d *Daemon) sendFrame(dst core.HostID, pkt *wire.Packet, goodBytes int) {
	if d.stalled {
		return // crashed daemon: outbound frames are lost
	}
	d.net.HostSend(&netsim.Frame{
		Src:       d.host,
		Dst:       dst,
		Pkt:       pkt,
		WireBytes: pkt.WireBytes(d.cfg.KPartBytes),
		GoodBytes: goodBytes,
	})
}

// sendOwned transmits a packet this daemon relinquishes: nothing here
// retains a reference after the call, so the link may hand the frame through
// by ownership transfer (clone elision) and the receiver releases it.
func (d *Daemon) sendOwned(dst core.HostID, pkt *wire.Packet, goodBytes int) {
	if d.stalled {
		pkt.Release() // lost before the wire; recycle immediately
		return
	}
	d.net.HostSend(&netsim.Frame{
		Src:       d.host,
		Dst:       dst,
		Pkt:       pkt,
		WireBytes: pkt.WireBytes(d.cfg.KPartBytes),
		GoodBytes: goodBytes,
		Owned:     true,
	})
}

// sendAck acknowledges a received flow packet back to its sender. The ACK
// comes from the wire free list; the sender host releases it after the
// window bookkeeping.
func (d *Daemon) sendAck(pkt *wire.Packet) {
	ack := wire.NewPacket()
	ack.Type = wire.TypeAck
	ack.AckFor = pkt.Type
	ack.Task = pkt.Task
	ack.Flow = pkt.Flow
	ack.Seq = pkt.Seq
	d.sendOwned(pkt.Flow.Host, ack, 0)
}

// decodeResidueBits reconstructs the tuples of a data (or replay) packet
// selected by the eff bitmap into key-value pairs for host-side aggregation.
// eff is normally the packet's own liveness bitmap; under failover it is the
// packet's bitmap minus the bits the receiver already merged (claimBits).
func (d *Daemon) decodeResidueBits(pkt *wire.Packet, eff wire.Bitmap) []core.KV {
	var out []core.KV
	shortSlots := d.layout.ShortSlots()
	for i := 0; i < shortSlots && i < len(pkt.Slots); i++ {
		if !eff.Test(i) {
			continue
		}
		out = append(out, core.KV{
			Key: d.layout.ReconstructShort(pkt.Slots[i].KPart),
			Val: pkt.Slots[i].Val,
		})
	}
	m := d.cfg.MediumSegs
	for g := 0; g < d.cfg.MediumGroups; g++ {
		first := shortSlots + g*m
		if first >= len(pkt.Slots) || !eff.Test(first) {
			continue
		}
		kparts := make([]uint64, m)
		for j := 0; j < m; j++ {
			kparts[j] = pkt.Slots[first+j].KPart
		}
		out = append(out, core.KV{
			Key: d.layout.ReconstructMedium(kparts),
			Val: pkt.Slots[first+m-1].Val,
		})
	}
	return out
}

// ChannelStats returns the sender-window counters of every data channel
// (index = channel id).
func (d *Daemon) ChannelStats() []window.SenderStats {
	out := make([]window.SenderStats, len(d.channels))
	for i, ch := range d.channels {
		out[i] = ch.win.Stats()
	}
	return out
}
