package hostd_test

// Daemon-level integration tests wiring hostd directly to switchd over
// netsim (the ask package provides the same wiring behind its facade; these
// tests poke daemon behaviours the facade hides).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/hostd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchd"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

type ctrlAdapter struct{ sw *switchd.Switch }

func (c ctrlAdapter) RegisterFlow(fk core.FlowKey) (uint32, error) {
	if _, err := c.sw.RegisterFlow(fk); err != nil {
		return 0, err
	}
	return c.sw.Epoch(), nil
}
func (c ctrlAdapter) RegisterFlowAt(fk core.FlowKey, start uint32) (uint32, error) {
	if _, err := c.sw.RegisterFlowAt(fk, start); err != nil {
		return 0, err
	}
	return c.sw.Epoch(), nil
}
func (c ctrlAdapter) AllocRegion(spec core.TaskSpec) (hostd.AllocInfo, error) {
	_, err := c.sw.AllocRegion(spec.ID, spec.Receiver, spec.Op, spec.Rows)
	return hostd.AllocInfo{}, err
}
func (c ctrlAdapter) FreeRegion(task core.TaskID) error { return c.sw.FreeRegion(task) }

type rig struct {
	s       *sim.Simulation
	sw      *switchd.Switch
	daemons map[core.HostID]*hostd.Daemon
}

func newRig(t *testing.T, hosts int, link netsim.LinkConfig) *rig {
	t.Helper()
	s := sim.New(1)
	n := netsim.New(s, link)
	sw, err := switchd.New(s, n, core.DefaultConfig(), switchd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{s: s, sw: sw, daemons: make(map[core.HostID]*hostd.Daemon)}
	for h := 0; h < hosts; h++ {
		id := core.HostID(h)
		d, err := hostd.New(s, n, cpumodel.NewHost(s, 8), core.DefaultConfig(), id, ctrlAdapter{sw}, telemetry.Sink{})
		if err != nil {
			t.Fatal(err)
		}
		r.daemons[id] = d
	}
	return r
}

func TestSendSubmittedBeforeNotify(t *testing.T) {
	// The sender application can hand its stream to the daemon before the
	// receiver's task notification arrives (§3.1: either order).
	r := newRig(t, 2, netsim.DefaultLinkConfig())
	w := workload.Uniform(256, 3000, 1)
	// SubmitSend first, at t=0, from outside any task context.
	sh := r.daemons[1].SubmitSend(42, w.Stream())
	var result core.Result
	r.s.Spawn("driver", func(p *sim.Proc) {
		h, err := r.daemons[0].Submit(p, core.TaskSpec{
			ID: 42, Receiver: 0, Senders: []core.HostID{1}, Op: core.OpSum,
		})
		if err != nil {
			t.Error(err)
			return
		}
		result = h.Wait(p)
	})
	r.s.Run(0)
	if !sh.Done() {
		t.Fatal("send handle not done")
	}
	if want := w.Reference(core.OpSum); !result.Equal(want) {
		t.Fatalf("result wrong: %s", result.Diff(want, 5))
	}
}

func TestSubmitErrors(t *testing.T) {
	r := newRig(t, 2, netsim.DefaultLinkConfig())
	r.s.Spawn("driver", func(p *sim.Proc) {
		// Wrong receiver host.
		if _, err := r.daemons[0].Submit(p, core.TaskSpec{ID: 1, Receiver: 1, Senders: []core.HostID{1}}); err == nil {
			t.Error("foreign receiver accepted")
		}
		// Duplicate task ID.
		if _, err := r.daemons[0].Submit(p, core.TaskSpec{ID: 2, Receiver: 0, Senders: []core.HostID{1}}); err != nil {
			t.Error(err)
		}
		if _, err := r.daemons[0].Submit(p, core.TaskSpec{ID: 2, Receiver: 0, Senders: []core.HostID{1}}); err == nil {
			t.Error("duplicate task accepted")
		}
		// Region impossible to allocate.
		if _, err := r.daemons[0].Submit(p, core.TaskSpec{ID: 3, Receiver: 0, Senders: []core.HostID{1}, Rows: 1 << 30}); err == nil {
			t.Error("impossible region accepted")
		}
	})
	r.s.Run(0)
}

func TestChannelStatsAndSlotFill(t *testing.T) {
	r := newRig(t, 2, netsim.DefaultLinkConfig())
	w := workload.Uniform(1024, 20000, 2)
	want := w.Reference(core.OpSum)
	var result core.Result
	r.s.Spawn("driver", func(p *sim.Proc) {
		h, err := r.daemons[0].Submit(p, core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}})
		if err != nil {
			t.Error(err)
			return
		}
		r.daemons[1].SubmitSend(1, w.Stream())
		result = h.Wait(p)
	})
	r.s.Run(0)
	if !result.Equal(want) {
		t.Fatalf("result wrong: %s", result.Diff(want, 5))
	}
	ds := r.daemons[1].Stats()
	if ds.TuplesSent != 20000 {
		t.Fatalf("TuplesSent = %d", ds.TuplesSent)
	}
	var fills int64
	for _, n := range ds.SlotFill {
		fills += n
	}
	// Long-key packets are excluded from the histogram; uniform short
	// keys produce none, so every sent packet is histogrammed.
	if fills != ds.PacketsSent {
		t.Fatalf("SlotFill total %d != data packets %d", fills, ds.PacketsSent)
	}
	// One channel carried the task (hash(1) % 4); its counters show it.
	chs := r.daemons[1].ChannelStats()
	active := 0
	for _, cs := range chs {
		if cs.Sent > 0 {
			active++
			if cs.Acked != cs.Sent {
				t.Fatalf("channel not fully acked: %+v", cs)
			}
		}
	}
	if active != 1 {
		t.Fatalf("%d channels active, want 1 (single task)", active)
	}
}

func TestCtrlNotifySurvivesLoss(t *testing.T) {
	// Task notifications cross the network on the control channel; under
	// heavy loss they are retransmitted until acknowledged.
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.3
	r := newRig(t, 3, link)
	var results [2]core.Result
	specs := [2]workload.Spec{workload.Uniform(128, 1500, 3), workload.Uniform(128, 1500, 4)}
	r.s.Spawn("driver", func(p *sim.Proc) {
		h, err := r.daemons[0].Submit(p, core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}})
		if err != nil {
			t.Error(err)
			return
		}
		r.daemons[1].SubmitSend(1, specs[0].Stream())
		r.daemons[2].SubmitSend(1, specs[1].Stream())
		results[0] = h.Wait(p)
	})
	r.s.Run(0)
	want := specs[0].Reference(core.OpSum)
	want.Merge(specs[1].Reference(core.OpSum), core.OpSum)
	if !results[0].Equal(want) {
		t.Fatalf("lossy-notify task wrong: %s", results[0].Diff(want, 5))
	}
}

func TestManySequentialTasksOneChannelFIFO(t *testing.T) {
	// Tasks hashing to the same channel are served in FIFO order; all
	// complete exactly.
	r := newRig(t, 2, netsim.DefaultLinkConfig())
	const n = 5
	var handles [n]*hostd.RecvHandle
	var specs [n]workload.Spec
	r.s.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			// IDs 4,8,12,...: all hash to channel 0.
			id := core.TaskID(4 * (i + 1))
			specs[i] = workload.Uniform(64, 800, int64(i))
			h, err := r.daemons[0].Submit(p, core.TaskSpec{ID: id, Receiver: 0, Senders: []core.HostID{1}})
			if err != nil {
				t.Error(err)
				return
			}
			handles[i] = h
			r.daemons[1].SubmitSend(id, specs[i].Stream())
		}
		for i := 0; i < n; i++ {
			handles[i].Wait(p)
		}
	})
	r.s.Run(0)
	for i := 0; i < n; i++ {
		if handles[i] == nil || !handles[i].Done() {
			t.Fatalf("task %d incomplete", i)
		}
	}
	// Only channel 0 (and no other) carried data.
	chs := r.daemons[1].ChannelStats()
	for ci, cs := range chs {
		if ci == 0 && cs.Sent == 0 {
			t.Fatal("channel 0 idle")
		}
		if ci != 0 && cs.Sent != 0 {
			t.Fatalf("channel %d carried %d packets; FIFO hashing broken", ci, cs.Sent)
		}
	}
}
