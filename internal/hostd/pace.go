package hostd

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// paceStream adapts a timed stream to the packetizer's paced-source
// contract, anchoring the stream's arrival offsets at the virtual time the
// channel starts serving the task. The returned stream yields only tuples
// whose arrival time has passed (and reports !ok otherwise); stall sleeps
// on the sim clock until the next arrival is due, returning false at EOF.
// Together they make the send loop consume the trace on the sim clock: the
// packetizer packs whatever has arrived, flushes partial packets on a lull,
// and parks until the next arrival instead of streaming back-to-back.
func paceStream(p *sim.Proc, ts core.TimedStream) (core.Stream, func() bool) {
	start := p.Now()
	var pending core.TimedKV
	has, eof := false, false
	fetch := func() {
		if !has && !eof {
			pending, has = ts()
			eof = !has
		}
	}
	stream := func() (core.KV, bool) {
		fetch()
		if has && start.Add(pending.At) <= p.Now() {
			has = false
			return pending.KV, true
		}
		return core.KV{}, false
	}
	stall := func() bool {
		fetch()
		if !has {
			return false
		}
		p.SleepUntil(start.Add(pending.At))
		return true
	}
	return stream, stall
}
