package hostd

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/wire"
)

// Host-side switch-failure failover (README "Failure model").
//
// Every daemon tracks the switch epoch — the incarnation number the switch
// stamps into all non-data packets it emits or forwards. Three mechanisms
// cooperate:
//
//  1. Detection. While the daemon has active tasks, a prober sends periodic
//     TypeProbe packets; ProbeMisses consecutive unanswered probes put the
//     daemon in degraded mode (the switch is silent). Independently, ANY
//     stamped packet whose epoch exceeds the daemon's reveals a reboot the
//     moment traffic resumes.
//
//  2. Degradation. In degraded mode nothing special happens at the hosts —
//     the sliding windows keep retransmitting (optionally with exponential
//     backoff), and once the switch is back, flow packets stream through it
//     UNREGISTERED: the switch has no reliability state for them, so it
//     forwards them whole (host-only path) and the receiver deduplicates and
//     aggregates them itself. Correctness never depends on the switch.
//
//  3. Recovery. A reboot wipes switch SRAM, losing every tuple the old
//     incarnation had absorbed but not yet surrendered to a receiver. On
//     observing an epoch advance each sender daemon re-registers its flows
//     at their current sequence position (RegisterFlowAt) and REPLAYS its
//     retained per-task packet history as TypeReplay packets — host-only
//     bypass traffic the switch never aggregates. The receiver reconciles
//     replays against what it already merged with a per-packet bitmap ledger
//     (claimBits), so tuples it received on the residue path are not double
//     counted and tuples lost in SRAM are recovered exactly once. Receiver
//     daemons re-allocate the switch regions of incomplete tasks, letting
//     fresh traffic aggregate in-network again (re-attach).
//
// Exactly-once across the INA → bypass transition holds because a tuple is
// counted at the receiver iff its (flow, seq, slot) bit is claimed in the
// ledger, and it is counted at teardown iff it was absorbed into the region
// fetched after all senders re-FINed (switchCommitted); the FIN-generation
// check guarantees the fetch happens only after every replay is merged.
// One subtlety: a recovery's RegisterFlowAt RPC lands on whatever incarnation
// is live NOW, which can be newer than the reboot that triggered it (the
// switch died again before the daemon noticed). Packets sent after such a
// registration are absorbed by the live incarnation and will surface through
// the teardown fetch — so replay must skip them, or they are counted twice.
// Each history record therefore carries the registration epoch at its first
// transmission (historyRec.absorbEpoch) and is replayed only if that
// incarnation has since died.

// FailoverStats counts failover activity at one daemon. It is a
// point-in-time view over the daemon's telemetry counters (metrics.go).
type FailoverStats struct {
	ProbesSent         int64
	ProbeTimeouts      int64
	EpochChanges       int64 // switch reboots observed
	Failovers          int64 // transitions into degraded mode
	Reattaches         int64 // completed recoveries
	ReplaysSent        int64 // TypeReplay packets transmitted
	ReplayTuplesMerged int64 // tuples recovered from replays (receiver side)
	DegradedTime       time.Duration
}

// FailoverStats returns a snapshot of the failover counters; if the daemon is
// currently degraded the open interval is included in DegradedTime.
func (d *Daemon) FailoverStats() FailoverStats {
	m := &d.met
	fs := FailoverStats{
		ProbesSent:         m.probesSent.Value(),
		ProbeTimeouts:      m.probeTimeouts.Value(),
		EpochChanges:       m.epochChanges.Value(),
		Failovers:          m.failovers.Value(),
		Reattaches:         m.reattaches.Value(),
		ReplaysSent:        m.replaysSent.Value(),
		ReplayTuplesMerged: m.replayTuplesMerged.Value(),
		DegradedTime:       time.Duration(m.degradedTimeNs.Value()),
	}
	if d.degraded {
		fs.DegradedTime += d.sim.Now().Sub(d.degradedAt)
	}
	return fs
}

// Epoch returns the latest switch incarnation this daemon has observed.
func (d *Daemon) Epoch() uint32 { return d.epoch }

// Degraded reports whether the daemon currently considers the switch
// unavailable (or is mid-recovery).
func (d *Daemon) Degraded() bool { return d.degraded }

// Stall freezes the daemon: every inbound and outbound frame is dropped
// until Resume. It models a host daemon crash where the shared-memory state
// survives (the application segments are crash-consistent); the sliding
// windows recover by ordinary retransmission after Resume.
func (d *Daemon) Stall() { d.stalled = true }

// Resume lifts a Stall.
func (d *Daemon) Resume() { d.stalled = false }

// bumpActivity tracks how many tasks (send or receive side) this daemon is
// involved in; the prober only runs while the count is positive, so an idle
// cluster quiesces.
func (d *Daemon) bumpActivity(delta int) {
	d.activity += delta
	if d.activity < 0 {
		panic(fmt.Sprintf("hostd: negative activity at host %d", d.host))
	}
	if delta > 0 {
		d.activitySig.Fire()
	}
}

// observeEpoch processes the epoch stamped into a received packet. A fresher
// epoch means the switch rebooted: enter degraded mode (if not already) and
// start recovery. The same epoch from a switch previously declared silent
// ends a silence-only degradation.
func (d *Daemon) observeEpoch(e uint32) {
	if e == 0 || !d.failover {
		return
	}
	if !window.SeqLess(d.epoch, e) {
		if e == d.epoch && d.degraded && !d.recovering {
			d.exitDegraded()
		}
		return
	}
	d.epoch = e
	d.met.epochChanges.Inc()
	d.tr.Emit(telemetry.CompHostd, "epoch_change", int64(d.host), int64(e), 0)
	d.enterDegraded()
	d.recovering = true
	d.recoveryGen++
	gen := d.recoveryGen
	// Channel recovery runs INLINE in each txLoop (no concurrent sender on
	// the flow); setting the request here is synchronous with frame receipt,
	// so any FIN the txLoop cuts after this point follows a replay.
	for _, ch := range d.channels {
		ch.recoverReq = gen
		ch.queueSig.Fire()
	}
	d.sim.Spawn(fmt.Sprintf("recover-h%d-g%d", d.host, gen), func(p *sim.Proc) {
		d.recoverProc(p, gen)
	})
}

func (d *Daemon) enterDegraded() {
	if d.degraded {
		return
	}
	d.degraded = true
	d.degradedAt = d.sim.Now()
	d.met.failovers.Inc()
	d.met.degraded.Set(1)
	d.tr.Emit(telemetry.CompHostd, "failover_enter", int64(d.host), int64(d.epoch), 0)
}

func (d *Daemon) exitDegraded() {
	if !d.degraded {
		return
	}
	interval := d.sim.Now().Sub(d.degradedAt)
	d.met.degradedTimeNs.Add(int64(interval))
	d.degraded = false
	d.met.degraded.Set(0)
	d.tr.Emit(telemetry.CompHostd, "failover_exit", int64(d.host), int64(d.epoch), int64(interval))
}

// probeInterval returns the configured (or default) idle probe spacing.
func (d *Daemon) probeInterval() time.Duration {
	if d.cfg.ProbeInterval > 0 {
		return d.cfg.ProbeInterval
	}
	return core.DefaultProbeInterval
}

func (d *Daemon) probeMisses() int {
	if d.cfg.ProbeMisses > 0 {
		return d.cfg.ProbeMisses
	}
	return core.DefaultProbeMisses
}

// probeLoop is the health prober: while the daemon has active tasks it sends
// switch-terminated TypeProbe packets and watches for replies. Misses back
// off exponentially so a long outage is probed gently; the first reply from
// a rebooted switch carries the new epoch and triggers recovery through the
// ordinary observeEpoch path.
func (d *Daemon) probeLoop(p *sim.Proc) {
	misses := 0
	for {
		for d.activity == 0 {
			misses = 0
			p.Wait(d.activitySig)
		}
		iv := d.probeInterval()
		if misses > 0 {
			shift := misses
			if shift > 5 {
				shift = 5
			}
			iv <<= uint(shift)
		}
		p.Sleep(iv)
		if d.activity == 0 || d.stalled {
			continue
		}
		d.probeSeq++
		seq := d.probeSeq
		probe := wire.NewPacket()
		probe.Type = wire.TypeProbe
		probe.Flow = d.ctrlCh.flow
		probe.Seq = seq
		d.sendOwned(d.host, probe, 0)
		d.met.probesSent.Inc()
		timeout := d.cfg.RetransmitTimeout
		deadline := d.sim.Now().Add(timeout)
		for window.SeqLess(d.probeReplySeq, seq) && d.sim.Now() < deadline {
			if !p.WaitTimeout(d.probeSig, deadline.Sub(d.sim.Now())) {
				break
			}
		}
		if !window.SeqLess(d.probeReplySeq, seq) {
			misses = 0
			continue
		}
		misses++
		d.met.probeTimeouts.Inc()
		if misses >= d.probeMisses() {
			d.enterDegraded()
		}
	}
}

// recoverProc drives one recovery generation: re-allocate switch regions for
// this daemon's incomplete receive tasks, then wait for every data channel's
// inline replay to finish. A newer generation (another reboot) abandons this
// one — its successor redoes the work.
func (d *Daemon) recoverProc(p *sim.Proc, gen uint32) {
	ids := make([]core.TaskID, 0, len(d.recvTasks))
	for id := range d.recvTasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := d.recvTasks[id]
		if t.completed || t.noRegion || t.switchCommitted || t.revoked {
			continue
		}
		if t.regionEpoch == d.epoch {
			continue // already re-allocated under this incarnation
		}
		if gen != d.recoveryGen {
			return
		}
		info, err := d.reallocRegion(p, t, gen)
		if gen != d.recoveryGen {
			return
		}
		if err != nil {
			// No switch capacity for the re-attach (or the fabric stayed
			// degraded past the retry budget): the task finishes on the
			// host-only path (its pre-crash absorbed tuples come via replay).
			t.noRegion = true
			continue
		}
		t.alloc = info
		t.regionEpoch = d.epoch
	}
	for {
		if gen != d.recoveryGen {
			return
		}
		all := true
		for _, ch := range d.channels {
			if ch.recoveredGen < gen {
				all = false
				break
			}
		}
		if all {
			break
		}
		p.Wait(d.chRecoverSig)
	}
	d.recovering = false
	d.met.reattaches.Inc()
	d.tr.Emit(telemetry.CompHostd, "reattach", int64(d.host), int64(d.epoch), int64(gen))
	d.exitDegraded()
}

// reattachRetries bounds how many times a recovery retries a region
// re-allocation that failed with a transient fabric degradation before the
// task falls back to host-only for this incarnation.
const reattachRetries = 3

// reallocRegion re-allocates one receive task's switch regions during
// recovery. A *core.DegradedError from the controller means the fabric is
// (still) partially down rather than out of capacity, so the call is
// retried with exponential backoff up to reattachRetries times — a bounded
// budget, because the next fabric epoch re-triggers recovery anyway and an
// unbounded loop would pin the task off the host-only fallback. Permanent
// rejections (quota overloads, capacity) are returned immediately.
func (d *Daemon) reallocRegion(p *sim.Proc, t *recvTask, gen uint32) (AllocInfo, error) {
	backoff := cpumodel.ControlRPCLatency
	for attempt := 0; ; attempt++ {
		p.Sleep(cpumodel.ControlRPCLatency)
		info, err := d.ctrl.AllocRegion(t.spec)
		if err == nil {
			return info, nil
		}
		var deg *core.DegradedError
		if !errors.As(err, &deg) || attempt >= reattachRetries || gen != d.recoveryGen {
			return AllocInfo{}, err
		}
		d.tr.Emit(telemetry.CompHostd, "reattach_backoff", int64(t.spec.ID), int64(attempt+1), int64(backoff))
		p.Sleep(backoff)
		backoff *= 2
	}
}

// OnRegionRevoked is the receiver-side reaction to the controller revoking a
// task's switch region (softer failure than a reboot): drain the region's
// absorbed tuples into the host result exactly once, then continue the task
// on the host-only path. Safe to call more than once.
func (d *Daemon) OnRegionRevoked(task core.TaskID) {
	t := d.recvTasks[task]
	if t == nil || t.completed || t.noRegion || t.revoked || t.tearingDown {
		return
	}
	t.revoked = true
	t.revokedAt = d.sim.Now()
	d.sim.Spawn(fmt.Sprintf("drain-task%d", task), t.drainRevoked)
}

// drainRevoked fetches a revoked region (aggregation already disabled on the
// switch), commits it into the host result, and frees the rows. The draining
// flag holds off a concurrent teardown until the drain settles.
func (t *recvTask) drainRevoked(p *sim.Proc) {
	t.draining = true
	defer func() {
		t.draining = false
		t.finSig.Fire()
	}()
	e := t.d.epoch
	copies := 1
	if t.d.cfg.ShadowCopy {
		copies = 2
	}
	var all []wire.FetchEntry
	for c := 0; c < copies; c++ {
		entries := t.d.fetchEntries(p, t.spec.ID, c, false, t.aggPoints()[0])
		if t.d.epoch != e {
			// The switch rebooted mid-drain: the region (and its tuples) are
			// gone from SRAM; the replay protocol recovers them instead.
			t.noRegion = true
			return
		}
		all = append(all, entries...)
	}
	if t.switchCommitted || t.completed {
		return
	}
	t.switchCommitted = true
	t.mergeEntries(p, all)
	t.noRegion = true
	p.Sleep(cpumodel.ControlRPCLatency)
	_ = t.d.ctrl.FreeRegion(t.spec.ID) // tolerated: a reboot may have freed it
}

// onRelease drops a completed task's retained replay history at a sender
// (the receiver sends taskRelease once the task result is final).
func (d *Daemon) onRelease(task core.TaskID) {
	st, ok := d.activeSends[task]
	if !ok {
		return
	}
	delete(d.activeSends, task)
	ch := d.channels[int(task)%len(d.channels)]
	delete(ch.retained, task)
	st.history = nil
	d.bumpActivity(-1)
}

// channelRecovered marks one data channel's replay for generation gen done.
func (d *Daemon) channelRecovered(ch *dataChannel, gen uint32) {
	if ch.recoveredGen < gen {
		ch.recoveredGen = gen
	}
	d.chRecoverSig.Fire()
}
