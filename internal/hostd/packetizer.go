package hostd

import (
	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/wire"
)

// packetizer turns a tuple stream into ASK packets following the ordered
// key-space partition (§3.2.2): every key always lands in its own slot
// (short) or coalesced group (medium), so one key is served by exactly one
// (set of) AA(s). Long keys — and values that do not fit an aggregator's
// vPart — are collected into long-key packets that bypass the switch.
//
// Emission policy: the stream is drained into per-unit buckets; a data
// packet is emitted once every unit has a tuple queued (a full packet) or
// when the total buffered tuples reach the buffering bound (under key skew
// a hot subspace fills the buffer while others stay empty, which is what
// leaves slots blank in Fig. 8(b)). The bound is on the total, not per
// bucket: a per-bucket cap would lock balanced workloads into a
// partial-packet regime, because the fullest bucket drains at most one
// tuple per packet and re-fills faster than the emptiest bucket.
type packetizer struct {
	layout *keyspace.Layout
	stream core.Stream
	// stall, when non-nil, marks the stream as paced (a timed replay): a
	// !ok from the stream means "no tuple due yet", not EOF. stall blocks
	// (on the sim clock) until the next tuple is due and returns true, or
	// returns false at true EOF. pull consults it only with empty buffers;
	// with tuples queued it flushes a partial packet first, so a lull in
	// arrivals never holds aggregated data hostage (NIC-style idle flush).
	stall func() bool
	// flush marks that the last pull stopped on a not-yet-due tuple with
	// data buffered: next must emit what it has even though no bucket set
	// is full.
	flush bool
	// part restricts placement to a tenant's keyspace band: keys outside it
	// (or of a class the band does not cover) take the long-key bypass. The
	// zero value routes over the whole keyspace, exactly as before.
	part keyspace.Partition
	// buckets[u] queues tuples for logical unit u: units 0..shortSlots-1
	// are short slots, then one per medium group.
	buckets  [][]core.KV
	nonEmpty int
	buffered int
	longQ    []wire.LongKV
	eof      bool
	maxBuf   int
	valLo    int64
	valHi    int64
}

// bufferPerUnit sizes the total buffering bound: units × bufferPerUnit
// tuples may be held before a packet is emitted with blank slots.
const bufferPerUnit = 256

// maxLongPerPacket keeps long-key packets within the MTU for typical keys.
const maxLongPerPacket = 32

func newPacketizer(layout *keyspace.Layout, stream core.Stream) *packetizer {
	n := uint(8 * layout.Config().KPartBytes)
	return &packetizer{
		layout:  layout,
		stream:  stream,
		buckets: make([][]core.KV, layout.LogicalUnits()),
		maxBuf:  bufferPerUnit * layout.LogicalUnits(),
		valLo:   -(int64(1) << (n - 1)),
		valHi:   int64(1)<<(n-1) - 1,
	}
}

// newPacedPacketizer builds a packetizer over a paced source: stream yields
// only tuples already due, stall waits (on the sim clock) for the next
// arrival. See the stall field for the emission policy.
func newPacedPacketizer(layout *keyspace.Layout, stream core.Stream, stall func() bool) *packetizer {
	pz := newPacketizer(layout, stream)
	pz.stall = stall
	return pz
}

// pull moves tuples from the stream into buckets until a packet can be
// emitted or the stream ends.
func (pz *packetizer) pull() {
	shortSlots := pz.layout.ShortSlots()
	pz.flush = false
	for !pz.eof {
		if pz.nonEmpty == len(pz.buckets) && len(pz.buckets) > 0 {
			return // full packet available
		}
		kv, ok := pz.stream()
		if !ok {
			if pz.stall == nil {
				pz.eof = true
				return
			}
			// Paced source: the next tuple is not due yet. Flush whatever
			// is queued before waiting; only park with empty buffers.
			if pz.buffered > 0 || len(pz.longQ) > 0 {
				pz.flush = true
				return
			}
			if !pz.stall() {
				pz.eof = true
				return
			}
			continue
		}
		if kv.Val < pz.valLo || kv.Val > pz.valHi {
			// Value exceeds the aggregator vPart: host-side path.
			pz.longQ = append(pz.longQ, wire.LongKV{Key: kv.Key, Val: kv.Val})
			if len(pz.longQ) >= maxLongPerPacket {
				return
			}
			continue
		}
		class, firstSlot, _ := pz.layout.LocateIn(pz.part, kv.Key)
		var unit int
		switch class {
		case keyspace.Short:
			unit = firstSlot
		case keyspace.Medium:
			unit = shortSlots + (firstSlot-shortSlots)/pz.layout.Config().MediumSegs
		default:
			pz.longQ = append(pz.longQ, wire.LongKV{Key: kv.Key, Val: kv.Val})
			if len(pz.longQ) >= maxLongPerPacket {
				return
			}
			continue
		}
		if len(pz.buckets[unit]) == 0 {
			pz.nonEmpty++
		}
		pz.buckets[unit] = append(pz.buckets[unit], kv)
		pz.buffered++
		if pz.buffered >= pz.maxBuf {
			return // buffering bound: emit with blank slots
		}
	}
}

// next returns the next packet to transmit. tuples is the number of logical
// tuples it carries (for CPU accounting); ok is false when the stream and
// all buffers are exhausted. The returned packet lacks Task/Flow/Seq, which
// the data channel assigns.
func (pz *packetizer) next() (pkt *wire.Packet, tuples int, ok bool) {
	pz.pull()
	// Long-key packets flush when saturated, at EOF before final data
	// packets (order is irrelevant; both are reliable), or on an arrival
	// lull when only long keys are queued.
	if len(pz.longQ) >= maxLongPerPacket || ((pz.eof || pz.flush) && pz.nonEmpty == 0 && len(pz.longQ) > 0) {
		n := len(pz.longQ)
		if n > maxLongPerPacket {
			n = maxLongPerPacket
		}
		long := append([]wire.LongKV(nil), pz.longQ[:n]...)
		pz.longQ = pz.longQ[n:]
		return &wire.Packet{Type: wire.TypeLongKey, Long: long}, n, true
	}
	if pz.nonEmpty == 0 {
		return nil, 0, false
	}
	return pz.emitData()
}

// emitData builds one data packet taking at most one tuple per unit.
//
// The unit index already encodes the placement — unit u < shortSlots IS the
// short slot, and a medium unit's group is u − shortSlots — so tuples are
// packed straight from the key string without re-classifying or re-hashing
// (pull's Locate call did that once when bucketing).
func (pz *packetizer) emitData() (*wire.Packet, int, bool) {
	cfg := pz.layout.Config()
	shortSlots := pz.layout.ShortSlots()
	pkt := &wire.Packet{Type: wire.TypeData, Slots: make([]wire.Slot, cfg.NumAAs)}
	tuples := 0
	for u := range pz.buckets {
		if len(pz.buckets[u]) == 0 {
			continue
		}
		kv := pz.buckets[u][0]
		pz.buckets[u] = pz.buckets[u][1:]
		pz.buffered--
		if len(pz.buckets[u]) == 0 {
			pz.nonEmpty--
		}
		if u < shortSlots {
			pkt.Slots[u] = wire.Slot{
				KPart: wire.PackKPartString(kv.Key, cfg.KPartBytes),
				Val:   kv.Val,
			}
			pkt.Bitmap = pkt.Bitmap.Set(u)
		} else {
			first := shortSlots + (u-shortSlots)*cfg.MediumSegs
			for j := 0; j < cfg.MediumSegs; j++ {
				lo := j * cfg.KPartBytes
				hi := lo + cfg.KPartBytes
				var seg string
				if lo < len(kv.Key) {
					if hi > len(kv.Key) {
						hi = len(kv.Key)
					}
					seg = kv.Key[lo:hi]
				}
				slot := wire.Slot{KPart: wire.PackKPartString(seg, cfg.KPartBytes)}
				if j == cfg.MediumSegs-1 {
					slot.Val = kv.Val
				}
				pkt.Slots[first+j] = slot
				pkt.Bitmap = pkt.Bitmap.Set(first + j)
			}
		}
		tuples++
	}
	return pkt, tuples, true
}
