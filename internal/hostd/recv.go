package hostd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/wire"
)

// RecvTaskStats counts receiver-side activity for one task. It is a
// point-in-time view over the task's telemetry counters (metrics.go).
type RecvTaskStats struct {
	DataPackets   int64 // data packets processed (fresh)
	ResidueTuples int64 // tuples aggregated at the host
	LongTuples    int64 // long-key tuples (subset of ResidueTuples)
	ReplayTuples  int64 // tuples recovered from failover replays (subset)
	SwitchEntries int64 // aggregator entries merged from fetches
	Swaps         int64 // shadow-copy swaps completed
	// Degraded is how long the task ran without switch aggregation after a
	// region revocation (zero if the region was never revoked).
	Degraded time.Duration
}

// pktID identifies one sent data packet across the INA → bypass transition:
// a TypeData packet by its own (flow, seq), a TypeReplay by (flow, OrigSeq).
type pktID struct {
	flow core.FlowKey
	seq  uint32
}

// recvTask is the receiver-side state of one aggregation task: the shared
// memory segment (result map), FIN tracking, and the shadow-copy machinery.
type recvTask struct {
	d    *Daemon
	spec core.TaskSpec
	// alloc describes the switch allocation (partition + aggregation
	// points); the zero value is the single-switch legacy shape.
	alloc AllocInfo

	result core.Result // the task's shared-memory segment
	// finned records, per sender, the generation (sender epoch) of its
	// latest FIN. A FIN only counts toward completion if its generation
	// matches the receiver's current epoch: after a switch reboot, stale
	// FINs cut before the sender replayed its history must not trigger the
	// final fetch (the replays have not arrived yet).
	finned map[core.HostID]uint32
	finSig *sim.Signal

	// merged is the per-packet reconciliation ledger (failover mode): which
	// slot bits of each sent packet this receiver has already counted. A
	// replay contributes only its unclaimed bits, so nothing double-counts
	// across the INA → bypass transition.
	merged map[pktID]wire.Bitmap

	pktsSinceSwap int
	swapping      bool
	swapDone      *sim.Signal
	swapAckSig    *sim.Signal
	lastSwapAck   uint32
	swapSeqNum    uint32
	activeCopy    int

	noRegion bool
	// regionEpoch is the switch incarnation under which the task's region
	// was (re-)allocated; recovery skips tasks already re-attached.
	regionEpoch uint32
	// switchCommitted marks the point after which switch state has been (or
	// is being) folded into the result; later replays are ignored.
	switchCommitted bool
	// revoked/draining track a controller region revocation (failover.go).
	revoked   bool
	revokedAt sim.Time
	draining  bool

	tearingDown bool
	completed   bool
	done        *sim.Signal

	met recvMetrics
	// degraded is how long the task ran host-only after a region
	// revocation; set once at teardown.
	degraded time.Duration
}

// claimBits returns the not-yet-counted subset of b for packet (fk, seq) and
// records it as counted.
func (t *recvTask) claimBits(fk core.FlowKey, seq uint32, b wire.Bitmap) wire.Bitmap {
	id := pktID{fk, seq}
	prev := t.merged[id]
	eff := b &^ prev
	t.merged[id] = prev | b
	return eff
}

// allFinned reports whether every sender has FINished under the current
// switch incarnation.
func (t *recvTask) allFinned() bool {
	for _, s := range t.spec.Senders {
		if t.finned[s] < t.d.epoch {
			return false
		}
	}
	return true
}

// RecvHandle lets the receiving application wait for task completion and
// read the result from the shared-memory segment (§3.1 steps ⑩–⑪).
type RecvHandle struct{ t *recvTask }

// Wait blocks until the aggregation completes and returns the final result.
func (h *RecvHandle) Wait(p *sim.Proc) core.Result {
	for !h.t.completed {
		p.Wait(h.t.done)
	}
	return h.t.result
}

// Done reports whether the task completed.
func (h *RecvHandle) Done() bool { return h.t.completed }

// Stats returns a snapshot of the receiver-side counters.
func (h *RecvHandle) Stats() RecvTaskStats {
	t := h.t
	return RecvTaskStats{
		DataPackets:   t.met.dataPackets.Value(),
		ResidueTuples: t.met.residueTuples.Value(),
		LongTuples:    t.met.longTuples.Value(),
		ReplayTuples:  t.met.replayTuples.Value(),
		SwitchEntries: t.met.switchEntries.Value(),
		Swaps:         t.met.swaps.Value(),
		Degraded:      t.degraded,
	}
}

// Submit starts an aggregation task with this daemon's host as the receiver
// (§3.1 steps ①–⑤): it allocates the shared-memory segment, requests a
// switch memory region from the controller, and notifies every sender-side
// daemon over the control channel. It must run in process context (the
// control-plane RPC blocks).
func (d *Daemon) Submit(p *sim.Proc, spec core.TaskSpec) (*RecvHandle, error) {
	if spec.Receiver != d.host {
		return nil, fmt.Errorf("hostd: task %d receiver is host %d, submitted at %d", spec.ID, spec.Receiver, d.host)
	}
	if _, dup := d.recvTasks[spec.ID]; dup {
		return nil, fmt.Errorf("hostd: task %d already submitted", spec.ID)
	}
	t := &recvTask{
		d:          d,
		spec:       spec,
		result:     make(core.Result),
		finned:     make(map[core.HostID]uint32),
		noRegion:   spec.Rows < 0,
		swapDone:   sim.NewSignal(d.sim),
		swapAckSig: sim.NewSignal(d.sim),
		finSig:     sim.NewSignal(d.sim),
		done:       sim.NewSignal(d.sim),
		met:        d.newRecvMetrics(spec.ID),
	}
	if d.failover {
		t.merged = make(map[pktID]wire.Bitmap)
	}
	d.recvTasks[spec.ID] = t
	if !t.noRegion {
		p.Sleep(cpumodel.ControlRPCLatency)
		info, err := d.ctrl.AllocRegion(spec)
		if err != nil {
			delete(d.recvTasks, spec.ID)
			return nil, err
		}
		t.alloc = info
		t.regionEpoch = d.epoch
	}
	if d.failover {
		d.bumpActivity(1)
	}
	// Notify sender daemons (reliably, over the control channel); local
	// senders are notified directly.
	n := taskNotify{Task: spec.ID, Receiver: d.host, Op: spec.Op, Partition: t.alloc.Partition}
	for _, s := range spec.Senders {
		if s == d.host {
			d.onNotify(n)
		} else {
			d.ctrlCh.send(p, s, n)
		}
	}
	return &RecvHandle{t}, nil
}

// SubmitSend registers a sender-side stream for a task (§3.1 steps ⑥–⑦).
// The stream starts flowing once the receiver's notification has arrived;
// either order works.
func (d *Daemon) SubmitSend(task core.TaskID, stream core.Stream) *SendHandle {
	return d.submitSend(&sendTask{id: task, stream: stream, done: sim.NewSignal(d.sim)})
}

// SubmitSendTimed registers a timed sender-side stream for a task: tuples
// become available to the data channel at their arrival offsets (anchored
// at the moment the channel starts serving the task) instead of
// back-to-back, so the whole protocol — packetization, windowing,
// congestion — runs under the trace's temporal shape.
func (d *Daemon) SubmitSendTimed(task core.TaskID, ts core.TimedStream) *SendHandle {
	return d.submitSend(&sendTask{id: task, timed: ts, done: sim.NewSignal(d.sim)})
}

func (d *Daemon) submitSend(st *sendTask) *SendHandle {
	if n, ok := d.notified[st.id]; ok {
		d.activateSend(st, n)
	} else {
		d.sendReady[st.id] = st
	}
	return &SendHandle{st}
}

// onNotify handles a task notification at a sender daemon.
func (d *Daemon) onNotify(n taskNotify) {
	if st, ok := d.sendReady[n.Task]; ok {
		delete(d.sendReady, n.Task)
		d.activateSend(st, n)
		return
	}
	d.notified[n.Task] = n
}

// activateSend assigns the task to a data channel by hash(ID) (§3.1).
// Multi-tenant daemons with channel ranges installed (SetTenantChannels)
// hash within the owning tenant's range instead, so one tenant's backlog
// never queues behind another's; daemons without ranges keep the exact
// legacy assignment.
func (d *Daemon) activateSend(st *sendTask, n taskNotify) {
	st.receiver = n.Receiver
	st.part = n.Partition
	if d.failover {
		if _, dup := d.activeSends[st.id]; !dup {
			d.activeSends[st.id] = st
			d.bumpActivity(1)
		}
	}
	ch := d.channels[int(st.id)%len(d.channels)]
	if r, ok := d.tenantCh[st.id.Tenant()]; ok {
		ch = d.channels[r.lo+int(st.id)%r.n]
	}
	ch.enqueue(st)
}

// SetTenantChannels dedicates the contiguous data-channel range [lo, lo+n)
// to a tenant's send tasks. Installing any range switches task→channel
// assignment to per-tenant hashing for the tenants covered; tenants without
// a range (and daemons where this is never called) use the legacy global
// hash. Call at cluster construction time, before tasks flow.
func (d *Daemon) SetTenantChannels(tenant core.TenantID, lo, n int) error {
	if lo < 0 || n <= 0 || lo+n > len(d.channels) {
		return fmt.Errorf("hostd: tenant %d channel range [%d,%d) outside 0..%d", tenant, lo, lo+n, len(d.channels))
	}
	if d.tenantCh == nil {
		d.tenantCh = make(map[core.TenantID]chRange)
	}
	d.tenantCh[tenant] = chRange{lo: lo, n: n}
	return nil
}

// processInbound handles one flow packet on a channel's receive thread.
func (d *Daemon) processInbound(p *sim.Proc, ch *dataChannel, f *netsim.Frame) {
	pkt := f.Pkt
	// The transport ACK went out at arrival (HandleFrame); here the packet
	// is classified and merged exactly once.
	verdict := d.dedupFor(pkt.Flow).Observe(pkt.Seq)
	if verdict == window.Stale {
		return
	}
	if verdict == window.Duplicate {
		ch.rxThread.Run(p, cpumodel.PacketIOCost)
		return
	}

	t := d.recvTasks[pkt.Task]
	var kvs []core.KV
	longTuples := 0
	switch pkt.Type {
	case wire.TypeData:
		eff := pkt.Bitmap
		if d.failover && t != nil && !t.completed {
			eff = t.claimBits(pkt.Flow, pkt.Seq, pkt.Bitmap)
		}
		kvs = d.decodeResidueBits(pkt, eff)
	case wire.TypeReplay:
		// Failover replay: merge only the bits not already counted from the
		// original packet's residue path, and nothing at all once switch
		// state has been committed (the replayed tuples were either merged
		// then or surrendered by the pre-reboot switch — never both).
		if t != nil && !t.completed && !t.switchCommitted && t.merged != nil {
			eff := t.claimBits(pkt.Flow, pkt.OrigSeq, pkt.Bitmap)
			kvs = d.decodeResidueBits(pkt, eff)
		}
	case wire.TypeLongKey:
		for _, lk := range pkt.Long {
			kvs = append(kvs, core.KV{Key: lk.Key, Val: lk.Val})
		}
		longTuples = len(kvs)
	}
	cost := cpumodel.PacketIOCost + time.Duration(len(kvs))*cpumodel.HostAggregateCost
	ch.rxThread.Run(p, cost)
	d.met.packetsReceived.Inc()

	if t != nil && !t.completed {
		for _, kv := range kvs {
			t.result.MergeKV(kv, t.spec.Op)
		}
		t.met.residueTuples.Add(int64(len(kvs)))
		t.met.longTuples.Add(int64(longTuples))
		d.met.residueTuples.Add(int64(len(kvs)))
		switch pkt.Type {
		case wire.TypeData:
			t.met.dataPackets.Inc()
			t.pktsSinceSwap++
			t.maybeSwap()
		case wire.TypeReplay:
			t.met.replayTuples.Add(int64(len(kvs)))
			d.met.replayTuplesMerged.Add(int64(len(kvs)))
			d.tr.Emit(telemetry.CompHostd, "replay_merged", int64(pkt.Task), int64(pkt.OrigSeq), int64(len(kvs)))
		case wire.TypeFin:
			t.onFin(pkt.Flow.Host, pkt.OrigSeq)
		}
	}
}

// onFin records a sender's FIN with its generation; once every sender has
// finished under the current switch incarnation, teardown begins (§3.1
// steps ⑨–⑫).
func (t *recvTask) onFin(sender core.HostID, gen uint32) {
	if gen == 0 {
		gen = 1 // pre-failover senders carry no generation
	}
	if t.finned[sender] < gen {
		t.finned[sender] = gen
	}
	t.finSig.Fire()
	if !t.allFinned() || t.tearingDown {
		return
	}
	t.tearingDown = true
	t.d.sim.Spawn(fmt.Sprintf("teardown-task%d", t.spec.ID), t.teardown)
}

// teardown fetches the remaining switch state, merges it with the local
// result, and releases the switch region. Under failover the loop re-arms:
// a switch reboot observed mid-fetch invalidates the FIN set (senders will
// replay and re-FIN under the new epoch), and the fetched entries of the
// dead incarnation are discarded.
func (t *recvTask) teardown(p *sim.Proc) {
	for {
		if !t.allFinned() {
			p.Wait(t.finSig)
			continue
		}
		if t.swapping {
			p.Wait(t.swapDone)
			continue
		}
		if t.draining {
			p.Wait(t.finSig)
			continue
		}
		if t.noRegion || t.switchCommitted {
			break
		}
		e := t.d.epoch
		copies := 1
		if t.d.cfg.ShadowCopy {
			copies = 2
		}
		var all []wire.FetchEntry
		stale := false
		for pi, point := range t.aggPoints() {
			for c := 0; c < copies; c++ {
				entries := t.d.fetchEntries(p, t.spec.ID, c, false, point)
				if t.d.epoch != e {
					stale = true
					break
				}
				if pi > 0 {
					// mergeEntries groups medium entries by (group, row), but
					// rows fetched from different aggregation points are
					// unrelated coordinate spaces: a same-row collision across
					// points would look like an overfull group. Row is only a
					// grouping key host-side, so offsetting per point keeps
					// the spaces apart; point 0 stays untouched (identical to
					// the single-switch path).
					for i := range entries {
						entries[i].Row += pi * fetchRowStride
					}
				}
				all = append(all, entries...)
			}
			if stale {
				break
			}
		}
		if stale {
			continue
		}
		// Commit point: from here on, replays are ignored — every absorbed
		// tuple is either in `all` or was already claimed on the residue
		// path. No yields between the epoch check above and this line.
		t.switchCommitted = true
		t.mergeEntries(p, all)
		break
	}
	if !t.noRegion {
		p.Sleep(cpumodel.ControlRPCLatency)
		if err := t.d.ctrl.FreeRegion(t.spec.ID); err != nil && !t.d.failover {
			// Under failover a reboot may have freed the region already;
			// otherwise a free failure is a protocol bug.
			panic(fmt.Sprintf("hostd: freeing region of task %d: %v", t.spec.ID, err))
		}
	}
	if t.revoked {
		t.degraded = t.d.sim.Now().Sub(t.revokedAt)
	}
	t.completed = true
	if t.d.failover {
		// Release the senders' retained replay history: the result is final.
		released := make(map[core.HostID]bool)
		for _, s := range t.spec.Senders {
			if released[s] {
				continue
			}
			released[s] = true
			if s == t.d.host {
				t.d.onRelease(t.spec.ID)
			} else {
				t.d.ctrlCh.send(p, s, taskRelease{Task: t.spec.ID})
			}
		}
		t.d.bumpActivity(-1)
	}
	t.done.Fire()
}

// aggPoints lists the task's aggregation points: the fabric addresses to
// fetch/clear/swap at, defaulting to the legacy first-hop switch (requests
// addressed to this host, consumed by the switch on the path).
func (t *recvTask) aggPoints() []core.HostID {
	if len(t.alloc.FetchFrom) > 0 {
		return t.alloc.FetchFrom
	}
	return []core.HostID{t.d.host}
}

// maybeSwap triggers a shadow-copy swap when enough packets have reached
// the receiver since the last one (§3.4: forwarded packets indicate
// aggregator conflicts, i.e. pressure on the active copy).
//
// Tasks spread over several aggregation points (hierarchical fat-tree
// re-aggregation) never swap: one swap packet flips one switch's copy
// indicator, and flipping the points one by one would let a sender's packet
// meet different active copies at different tiers — the §3.4 quiescence
// argument only covers the single-switch deployment. Their hot-set relief
// comes from the cross-tenant borrowing policy instead (internal/tenancy).
func (t *recvTask) maybeSwap() {
	if !t.d.cfg.ShadowCopy || t.d.cfg.SwapThreshold == 0 || t.noRegion ||
		len(t.alloc.FetchFrom) > 1 ||
		t.swapping || t.tearingDown || t.pktsSinceSwap < t.d.cfg.SwapThreshold {
		return
	}
	t.swapping = true
	t.pktsSinceSwap = 0
	t.d.met.swapsTriggered.Inc()
	t.d.sim.Spawn(fmt.Sprintf("swap-task%d", t.spec.ID), t.runSwap)
}

// runSwap executes one swap: notify the switch (exactly-once via the swap
// sequence), then fetch, merge, and clear the now-idle copy so hot keys can
// reseize aggregators.
func (t *recvTask) runSwap(p *sim.Proc) {
	t.swapSeqNum++
	seq := t.swapSeqNum
	old := t.activeCopy
	pkt := &wire.Packet{
		Type: wire.TypeSwap,
		Task: t.spec.ID,
		Flow: core.FlowKey{Host: t.d.host, Channel: t.d.ctrlCh.flow.Channel},
		Seq:  seq,
	}
	// A single non-legacy aggregation point (e.g. a one-leaf task on a
	// fat-tree) swaps that switch by address; the legacy path stays
	// self-addressed and is consumed by the switch on the path.
	dst := t.aggPoints()[0]
	for window.SeqLess(t.lastSwapAck, seq) {
		t.d.sendOwned(dst, pkt.ClonePooled(), 0)
		p.WaitTimeout(t.swapAckSig, t.d.cfg.RetransmitTimeout)
	}
	t.activeCopy ^= 1
	entries := t.d.fetchEntries(p, t.spec.ID, old, true, dst)
	t.mergeEntries(p, entries)
	t.met.swaps.Inc()
	t.d.tr.Emit(telemetry.CompHostd, "swap_complete", int64(t.spec.ID), int64(seq), int64(len(entries)))
	t.swapping = false
	t.swapDone.Fire()
}

// onSwapAck records the switch's swap acknowledgment.
func (t *recvTask) onSwapAck(seq uint32) {
	if window.SeqLess(t.lastSwapAck, seq) {
		t.lastSwapAck = seq
	}
	t.swapAckSig.Fire()
}

// mergeEntries folds fetched aggregator entries into the task result,
// reconstructing short keys directly and medium keys from their coalesced
// group members.
func (t *recvTask) mergeEntries(p *sim.Proc, entries []wire.FetchEntry) {
	if len(entries) == 0 {
		return
	}
	t.d.cpu.Exec(p, time.Duration(len(entries))*cpumodel.HostAggregateCost)
	layout := t.d.layout
	shortSlots := layout.ShortSlots()
	m := t.d.cfg.MediumSegs
	partial := make(core.Result)
	type groupRow struct{ group, row int }
	groups := make(map[groupRow][]wire.FetchEntry)
	for _, e := range entries {
		if e.AA < shortSlots {
			key := layout.ReconstructShort(e.KPart)
			if cur, ok := partial[key]; ok {
				partial[key] = combine(t.spec.Op, cur, e.Val)
			} else {
				partial[key] = e.Val
			}
			continue
		}
		g := (e.AA - shortSlots) / m
		groups[groupRow{g, e.Row}] = append(groups[groupRow{g, e.Row}], e)
	}
	// Merge groups in a deterministic (group, row) order: for a
	// non-commutative Op the order in which rows fold into the partial
	// result is observable, and map iteration order would leak into it.
	rows := make([]groupRow, 0, len(groups))
	for gr := range groups {
		rows = append(rows, gr)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].group != rows[j].group {
			return rows[i].group < rows[j].group
		}
		return rows[i].row < rows[j].row
	})
	for _, gr := range rows {
		es := groups[gr]
		if len(es) != m {
			// An incomplete medium group is impossible on an honest build:
			// the switch writes all m members of a group atomically, and the
			// end-to-end checksum quarantines forged packets before they can
			// touch aggregator state. With verification disabled (the
			// DisableChecksumVerify fault hook), corrupted bytes can forge
			// partial groups; downgrade the assertion to data loss so the
			// chaos soak harness observes a conservation violation instead
			// of a crashed process.
			if t.d.cfg.DisableChecksumVerify {
				continue
			}
			panic(fmt.Sprintf("hostd: medium group %d row %d has %d of %d members", gr.group, gr.row, len(es), m))
		}
		kparts := make([]uint64, m)
		var val int64
		lastAA := shortSlots + gr.group*m + m - 1
		for _, e := range es {
			kparts[e.AA-shortSlots-gr.group*m] = e.KPart
			if e.AA == lastAA {
				val = e.Val
			}
		}
		key := layout.ReconstructMedium(kparts)
		if cur, ok := partial[key]; ok {
			partial[key] = combine(t.spec.Op, cur, val)
		} else {
			partial[key] = val
		}
	}
	t.result.Merge(partial, t.spec.Op)
	t.met.switchEntries.Add(int64(len(entries)))
	t.d.met.switchTuples.Add(int64(len(entries)))
}

// combine merges two partial aggregates of the same key (counts add).
func combine(op core.Op, a, b int64) int64 {
	if op == core.OpCount {
		return a + b
	}
	return op.Apply(a, b)
}

// fetchRetry is the receiver's fetch/clear retransmission interval; it must
// comfortably exceed one reply chunk's round trip.
const fetchRetry = 500 * time.Microsecond

// fetchRowStride separates the copy-relative row spaces of distinct
// aggregation points when their entries are merged together; it only needs
// to exceed any region's CopyRows.
const fetchRowStride = 1 << 20

// fetchReq tracks one in-flight fetch (or clear) request.
type fetchReq struct {
	id       uint32
	chunks   map[uint16][]wire.FetchEntry
	total    int
	cleared  bool
	progress *sim.Signal
}

func (fr *fetchReq) addChunk(pkt *wire.Packet) {
	fr.total = int(pkt.FetchChunks)
	if _, dup := fr.chunks[pkt.FetchChunk]; !dup {
		fr.chunks[pkt.FetchChunk] = pkt.FetchEntries
	}
	fr.progress.Fire()
}

// complete uses >= because a fetch retried across a switch reboot can see a
// smaller chunk total than an earlier partial reply delivered (the region no
// longer exists, so the reply is a single empty chunk); callers discard
// epoch-crossed snapshots anyway.
func (fr *fetchReq) complete() bool { return fr.total >= 0 && len(fr.chunks) >= fr.total }

// fetchEntries reliably reads one copy of a task's region (§3.4 Read) at
// aggregation point dst: an idempotent snapshot fetch retransmitted until
// all chunks arrive, followed (optionally) by an idempotent clear
// retransmitted until acknowledged. dst == d.host is the legacy
// single-switch shape (the request is consumed by the switch on the path);
// any other address names a leaf or spine on a multi-switch fabric.
func (d *Daemon) fetchEntries(p *sim.Proc, task core.TaskID, copy int, clear bool, dst core.HostID) []wire.FetchEntry {
	d.nextFetch++
	fr := &fetchReq{id: d.nextFetch, chunks: make(map[uint16][]wire.FetchEntry), total: -1, progress: sim.NewSignal(d.sim)}
	d.fetchReqs[fr.id] = fr
	req := &wire.Packet{
		Type:      wire.TypeFetch,
		Task:      task,
		Flow:      core.FlowKey{Host: d.host, Channel: d.ctrlCh.flow.Channel},
		Seq:       fr.id,
		FetchCopy: copy,
	}
	d.sendOwned(dst, req.ClonePooled(), 0)
	for !fr.complete() {
		if !p.WaitTimeout(fr.progress, fetchRetry) && !fr.complete() {
			d.sendOwned(dst, req.ClonePooled(), 0)
		}
	}
	delete(d.fetchReqs, fr.id)
	var entries []wire.FetchEntry
	for c := 0; c < fr.total; c++ {
		entries = append(entries, fr.chunks[uint16(c)]...)
	}

	if clear {
		d.nextFetch++
		cr := &fetchReq{id: d.nextFetch, chunks: map[uint16][]wire.FetchEntry{}, total: -1, progress: sim.NewSignal(d.sim)}
		d.fetchReqs[cr.id] = cr
		creq := req.Clone()
		creq.Seq = cr.id
		creq.FetchClear = true
		d.sendOwned(dst, creq.ClonePooled(), 0)
		for !cr.cleared {
			if !p.WaitTimeout(cr.progress, fetchRetry) && !cr.cleared {
				d.sendOwned(dst, creq.ClonePooled(), 0)
			}
		}
		delete(d.fetchReqs, cr.id)
	}
	return entries
}
