package hostd

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/wire"
)

func testLayout(t *testing.T) *keyspace.Layout {
	t.Helper()
	l, err := keyspace.NewLayout(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// drainPackets collects every packet a packetizer emits.
func drainPackets(pz *packetizer) []*wire.Packet {
	var out []*wire.Packet
	for {
		pkt, _, ok := pz.next()
		if !ok {
			return out
		}
		out = append(out, pkt)
	}
}

// decodeAll reconstructs all tuples carried by a packet list.
func decodeAll(l *keyspace.Layout, pkts []*wire.Packet) []core.KV {
	cfg := l.Config()
	var out []core.KV
	for _, pkt := range pkts {
		switch pkt.Type {
		case wire.TypeLongKey:
			for _, lk := range pkt.Long {
				out = append(out, core.KV{Key: lk.Key, Val: lk.Val})
			}
		case wire.TypeData:
			shortSlots := l.ShortSlots()
			for i := 0; i < shortSlots; i++ {
				if pkt.Bitmap.Test(i) {
					out = append(out, core.KV{Key: l.ReconstructShort(pkt.Slots[i].KPart), Val: pkt.Slots[i].Val})
				}
			}
			for g := 0; g < cfg.MediumGroups; g++ {
				first := shortSlots + g*cfg.MediumSegs
				if !pkt.Bitmap.Test(first) {
					continue
				}
				kparts := make([]uint64, cfg.MediumSegs)
				for j := range kparts {
					kparts[j] = pkt.Slots[first+j].KPart
				}
				out = append(out, core.KV{Key: l.ReconstructMedium(kparts), Val: pkt.Slots[first+cfg.MediumSegs-1].Val})
			}
		}
	}
	return out
}

func TestPacketizerLossless(t *testing.T) {
	// Every input tuple appears in exactly one packet, with its value.
	l := testLayout(t)
	rng := rand.New(rand.NewSource(1))
	var in []core.KV
	for i := 0; i < 5000; i++ {
		var key string
		switch rng.Intn(3) {
		case 0:
			key = fmt.Sprintf("s%d", rng.Intn(100))
		case 1:
			key = fmt.Sprintf("med%04d", rng.Intn(100))
		default:
			key = fmt.Sprintf("quite_long_key_%06d", rng.Intn(100))
		}
		in = append(in, core.KV{Key: key, Val: int64(rng.Intn(1000))})
	}
	pz := newPacketizer(l, core.SliceStream(in))
	out := decodeAll(l, drainPackets(pz))
	want := core.Reference(core.OpSum, in)
	got := core.Reference(core.OpSum, out)
	if len(out) != len(in) {
		t.Fatalf("tuples out = %d, want %d", len(out), len(in))
	}
	if !got.Equal(want) {
		t.Fatalf("packetizer corrupted stream: %s", got.Diff(want, 8))
	}
}

func TestPacketizerUniformFillsPackets(t *testing.T) {
	// Uniform short keys across many distinct values fill almost every
	// logical unit (Fig. 8(b) Uniform line).
	l := testLayout(t)
	rng := rand.New(rand.NewSource(2))
	var in []core.KV
	for i := 0; i < 20000; i++ {
		in = append(in, core.KV{Key: fmt.Sprintf("k%06d", rng.Intn(10000)), Val: 1})
	}
	pz := newPacketizer(l, core.SliceStream(in))
	pkts := drainPackets(pz)
	var live, dataPkts int
	for _, p := range pkts {
		if p.Type == wire.TypeData {
			live += p.LiveTuples()
			dataPkts++
		}
	}
	// Keys here are 7 bytes → medium: 8 groups × 2 slots each = 16 slots.
	avg := float64(live) / float64(dataPkts)
	if avg < 14.5 {
		t.Fatalf("average live slots per packet = %.2f, want near 16", avg)
	}
}

func TestPacketizerSkewLeavesBlanks(t *testing.T) {
	// A single ultra-hot key can fill only its own slot: packets must still
	// be emitted (bounded buffering), leaving other slots blank.
	l := testLayout(t)
	var in []core.KV
	for i := 0; i < 4*bufferPerUnit; i++ {
		in = append(in, core.KV{Key: "hot", Val: 1})
	}
	pz := newPacketizer(l, core.SliceStream(in))
	pkts := drainPackets(pz)
	if len(pkts) < 4 {
		t.Fatalf("packets = %d; bounded buffering not working", len(pkts))
	}
	total := 0
	for _, p := range pkts {
		if got := p.LiveTuples(); got > 1 {
			t.Fatalf("hot-key-only packet carries %d tuples", got)
		}
		total += p.LiveTuples()
	}
	if total != 4*bufferPerUnit {
		t.Fatalf("tuples = %d, want %d", total, 4*bufferPerUnit)
	}
}

func TestPacketizerLongKeysBypass(t *testing.T) {
	l := testLayout(t)
	in := []core.KV{
		{Key: "short", Val: 1}, // 5 bytes → medium actually
		{Key: "a_truly_long_key_beyond_groups", Val: 2},
		{Key: "k", Val: 3},
	}
	pz := newPacketizer(l, core.SliceStream(in))
	pkts := drainPackets(pz)
	var longPkts, dataPkts int
	for _, p := range pkts {
		switch p.Type {
		case wire.TypeLongKey:
			longPkts++
			if len(p.Long) != 1 || p.Long[0].Key != "a_truly_long_key_beyond_groups" {
				t.Fatalf("long packet contents: %+v", p.Long)
			}
		case wire.TypeData:
			dataPkts++
		}
	}
	if longPkts != 1 || dataPkts == 0 {
		t.Fatalf("long=%d data=%d", longPkts, dataPkts)
	}
}

func TestPacketizerHugeValuesBypass(t *testing.T) {
	l := testLayout(t)
	in := []core.KV{{Key: "k", Val: 1 << 40}}
	pz := newPacketizer(l, core.SliceStream(in))
	pkts := drainPackets(pz)
	if len(pkts) != 1 || pkts[0].Type != wire.TypeLongKey {
		t.Fatalf("oversized value not routed to long path: %+v", pkts)
	}
	if pkts[0].Long[0].Val != 1<<40 {
		t.Fatal("value corrupted")
	}
}

func TestPacketizerLongPacketMTU(t *testing.T) {
	l := testLayout(t)
	var in []core.KV
	for i := 0; i < 100; i++ {
		in = append(in, core.KV{Key: fmt.Sprintf("very_long_key_number_%08d", i), Val: 1})
	}
	pz := newPacketizer(l, core.SliceStream(in))
	for _, p := range drainPackets(pz) {
		if p.Type != wire.TypeLongKey {
			t.Fatalf("unexpected %v packet", p.Type)
		}
		if got := p.BufferBytes(4); got > wire.MTU {
			t.Fatalf("long packet %d bytes exceeds MTU", got)
		}
	}
}

func TestPacketizerEmptyStream(t *testing.T) {
	l := testLayout(t)
	pz := newPacketizer(l, core.SliceStream(nil))
	if pkts := drainPackets(pz); len(pkts) != 0 {
		t.Fatalf("empty stream emitted %d packets", len(pkts))
	}
}

func TestPacketizerSameKeySameSlotAcrossPackets(t *testing.T) {
	// Single-key-single-spot: a key's slot must be identical in every
	// packet that carries it (§3.2.2).
	l := testLayout(t)
	var in []core.KV
	for i := 0; i < 1000; i++ {
		in = append(in, core.KV{Key: "anchor", Val: 1})
		in = append(in, core.KV{Key: fmt.Sprintf("f%d", i), Val: 1})
	}
	pz := newPacketizer(l, core.SliceStream(in))
	slot := -1
	anchorKP := l.Place("anchor").KParts[0]
	for _, p := range drainPackets(pz) {
		if p.Type != wire.TypeData {
			continue
		}
		for i := range p.Slots {
			if p.Bitmap.Test(i) && p.Slots[i].KPart == anchorKP {
				if slot == -1 {
					slot = i
				} else if slot != i {
					t.Fatalf("key moved from slot %d to %d", slot, i)
				}
			}
		}
	}
	if slot == -1 {
		t.Fatal("anchor key never seen")
	}
}
