package hostd

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// The daemon's counters live on a telemetry.Registry (the cluster-wide
// one when telemetry is enabled, a private one otherwise); the Stats,
// FailoverStats, and RecvHandle.Stats accessors are views over those
// instruments.

// hostMetrics caches per-daemon instrument pointers (all labeled
// host=<id>), so hot paths pay one atomic add per event.
type hostMetrics struct {
	tuplesSent      *telemetry.Counter
	longTuplesSent  *telemetry.Counter
	packetsSent     *telemetry.Counter
	residueTuples   *telemetry.Counter
	switchTuples    *telemetry.Counter
	swapsTriggered  *telemetry.Counter
	packetsReceived *telemetry.Counter
	// slotFill buckets transmitted data packets by live slot count
	// (hostd.slot_fill{host,slots}); entries are created lazily so the
	// export carries only populated fill levels.
	slotFill [65]*telemetry.Counter
	// batchTuples is the packetizer batch-size distribution: tuples packed
	// per transmitted packet (short+medium+long).
	batchTuples *telemetry.Histogram

	// corruptDropped counts inbound frames quarantined by the end-to-end
	// checksum check (integrity; see HandleFrame).
	corruptDropped *telemetry.Counter

	// Failover counters (failover.go).
	probesSent         *telemetry.Counter
	probeTimeouts      *telemetry.Counter
	epochChanges       *telemetry.Counter
	failovers          *telemetry.Counter
	reattaches         *telemetry.Counter
	replaysSent        *telemetry.Counter
	replayTuplesMerged *telemetry.Counter
	degradedTimeNs     *telemetry.Counter // closed degraded intervals, ns
	degraded           *telemetry.Gauge   // 0/1 failover state
}

// recvMetrics are one receive task's counters
// (hostd.recv_*{task=...}); RecvTaskStats is the view.
type recvMetrics struct {
	dataPackets   *telemetry.Counter
	residueTuples *telemetry.Counter
	longTuples    *telemetry.Counter
	replayTuples  *telemetry.Counter
	switchEntries *telemetry.Counter
	swaps         *telemetry.Counter
}

func (d *Daemon) initMetrics(sink telemetry.Sink) {
	reg := sink.Reg
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	d.reg = reg
	d.tr = sink.Tr
	d.hostLbl = telemetry.L("host", strconv.Itoa(int(d.host)))
	l := d.hostLbl
	d.met = hostMetrics{
		tuplesSent:      reg.Counter("hostd.tuples_sent", l),
		longTuplesSent:  reg.Counter("hostd.long_tuples_sent", l),
		packetsSent:     reg.Counter("hostd.pkts_sent", l),
		residueTuples:   reg.Counter("hostd.residue_tuples", l),
		switchTuples:    reg.Counter("hostd.switch_tuples", l),
		swapsTriggered:  reg.Counter("hostd.swaps_triggered", l),
		packetsReceived: reg.Counter("hostd.pkts_received", l),
		batchTuples:     reg.Histogram("hostd.batch_tuples", l),
		corruptDropped:  reg.Counter("hostd.corrupt_dropped", l),

		probesSent:         reg.Counter("hostd.probes_sent", l),
		probeTimeouts:      reg.Counter("hostd.probe_timeouts", l),
		epochChanges:       reg.Counter("hostd.epoch_changes", l),
		failovers:          reg.Counter("hostd.failovers", l),
		reattaches:         reg.Counter("hostd.reattaches", l),
		replaysSent:        reg.Counter("hostd.replays_sent", l),
		replayTuplesMerged: reg.Counter("hostd.replay_tuples_merged", l),
		degradedTimeNs:     reg.Counter("hostd.degraded_time_ns", l),
		degraded:           reg.Gauge("hostd.degraded", l),
	}
}

// slotFillCounter lazily creates the fill-level counter for n live slots.
func (d *Daemon) slotFillCounter(n int) *telemetry.Counter {
	if c := d.met.slotFill[n]; c != nil {
		return c
	}
	c := d.reg.Counter("hostd.slot_fill", d.hostLbl, telemetry.L("slots", strconv.Itoa(n)))
	d.met.slotFill[n] = c
	return c
}

// newRecvMetrics builds a task's receiver-side counters.
func (d *Daemon) newRecvMetrics(task core.TaskID) recvMetrics {
	l := telemetry.L("task", strconv.FormatUint(uint64(task), 10))
	return recvMetrics{
		dataPackets:   d.reg.Counter("hostd.recv_data_pkts", l),
		residueTuples: d.reg.Counter("hostd.recv_residue_tuples", l),
		longTuples:    d.reg.Counter("hostd.recv_long_tuples", l),
		replayTuples:  d.reg.Counter("hostd.recv_replay_tuples", l),
		switchEntries: d.reg.Counter("hostd.recv_switch_entries", l),
		swaps:         d.reg.Counter("hostd.recv_swaps", l),
	}
}

// Registry exposes the daemon's metric registry (the cluster registry when
// telemetry is enabled).
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }
