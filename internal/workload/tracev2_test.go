package workload

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func timedFixture() []core.TimedKV {
	return []core.TimedKV{
		{KV: core.KV{Key: "alpha", Val: 1}, At: 0},
		{KV: core.KV{Key: "beta", Val: -7}, At: 1500 * time.Nanosecond},
		{KV: core.KV{Key: "alpha", Val: 2}, At: 1500 * time.Nanosecond},
		{KV: core.KV{Key: "gamma", Val: 1 << 40}, At: 2 * time.Millisecond},
	}
}

func TestTimedTraceRoundTrip(t *testing.T) {
	in := timedFixture()
	hdr := TraceHeader{Scenario: "unit", Seed: 42, Meta: map[string]string{"arrival": "poisson"}}
	var buf bytes.Buffer
	n, err := WriteTimedTrace(&buf, hdr, core.SliceTimedStream(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(in)) {
		t.Fatalf("wrote %d records, want %d", n, len(in))
	}
	got, tkvs, err := ReadTimedTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != TraceVersion || got.Scenario != "unit" || got.Seed != 42 || got.Records != int64(len(in)) {
		t.Fatalf("header round-trip: %+v", got)
	}
	if got.Meta["arrival"] != "poisson" {
		t.Fatalf("meta round-trip: %+v", got.Meta)
	}
	if len(tkvs) != len(in) {
		t.Fatalf("got %d records, want %d", len(tkvs), len(in))
	}
	for i := range in {
		if tkvs[i] != in[i] {
			t.Fatalf("record %d: got %+v want %+v", i, tkvs[i], in[i])
		}
	}
}

func TestReadTraceSniffsV1(t *testing.T) {
	var buf bytes.Buffer
	kvs := []core.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}}
	if _, err := WriteTSV(&buf, core.SliceStream(kvs)); err != nil {
		t.Fatal(err)
	}
	hdr, tkvs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != 1 || hdr.Records != 2 {
		t.Fatalf("v1 sniff header: %+v", hdr)
	}
	for i, kv := range kvs {
		if tkvs[i].KV != kv || tkvs[i].At != 0 {
			t.Fatalf("record %d: %+v", i, tkvs[i])
		}
	}
}

func TestReadTraceSniffsV2(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTimedTrace(&buf, TraceHeader{Seed: 9}, core.SliceTimedStream(timedFixture())); err != nil {
		t.Fatal(err)
	}
	hdr, tkvs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != TraceVersion || len(tkvs) != 4 {
		t.Fatalf("v2 sniff: hdr %+v, %d records", hdr, len(tkvs))
	}
}

func TestTimedTraceCorruptionErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTimedTrace(&buf, TraceHeader{}, core.SliceTimedStream(timedFixture())); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.Split(strings.TrimSuffix(good, "\n"), "\n")

	cases := map[string]string{
		"truncated":       strings.Join(lines[:3], "\n") + "\n",
		"trailing data":   good + "zzz\t9\n",
		"bad version":     strings.Replace(good, "\tv2\t", "\tv9\t", 1),
		"mangled header":  strings.Replace(good, `"records"`, `"record!`, 1),
		"bad arrival":     strings.Replace(good, "1500\tbeta", "15x0\tbeta", 1),
		"negative time":   strings.Replace(good, "1500\tbeta", "-1500\tbeta", 1),
		"missing field":   strings.Replace(good, "1500\tbeta\t-7", "1500beta-7", 1),
		"bad value":       strings.Replace(good, "beta\t-7", "beta\tseven", 1),
		"time regression": strings.Replace(good, "2000000\tgamma", "10\tgamma", 1),
	}
	for name, in := range cases {
		if in == good {
			t.Fatalf("%s: mutation did not apply", name)
		}
		if _, _, err := ReadTimedTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt trace parsed without error", name)
		}
	}
}

func TestTimedTraceErrorsCarryLineNumbers(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTimedTrace(&buf, TraceHeader{}, core.SliceTimedStream(timedFixture())); err != nil {
		t.Fatal(err)
	}
	// Record 2 (line 3) gets a bad value.
	in := strings.Replace(buf.String(), "beta\t-7", "beta\tseven", 1)
	_, _, err := ReadTimedTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

func TestWriteTimedTraceRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTimedTrace(&buf, TraceHeader{}, core.SliceTimedStream([]core.TimedKV{
		{KV: core.KV{Key: "tab\there", Val: 1}},
	})); err == nil {
		t.Error("key with tab accepted")
	}
	buf.Reset()
	if _, err := WriteTimedTrace(&buf, TraceHeader{}, core.SliceTimedStream([]core.TimedKV{
		{KV: core.KV{Key: "a", Val: 1}, At: time.Second},
		{KV: core.KV{Key: "b", Val: 1}, At: time.Millisecond},
	})); err == nil {
		t.Error("non-monotone arrivals accepted")
	}
}

func TestReadTSVErrorLineNumbers(t *testing.T) {
	_, err := ReadTSV(strings.NewReader("a\t1\nnotab\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
	_, err = ReadTSV(strings.NewReader("a\t1\nb\tx\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestReadTSVTooLongLine(t *testing.T) {
	long := strings.Repeat("k", maxTSVLine+1)
	_, err := ReadTSV(strings.NewReader("ok\t1\n" + long + "\t2\n"))
	if err == nil {
		t.Fatal("over-long line silently accepted")
	}
	for _, want := range []string{"line 2", "exceeds"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// FuzzReadTrace asserts the sniffing reader never panics and either parses
// or errors on arbitrary bytes; whatever parses must re-encode cleanly.
func FuzzReadTrace(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteTimedTrace(&buf, TraceHeader{Scenario: "seed", Seed: 3}, core.SliceTimedStream(timedFixture())); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("a\t1\nb\t2\n"))
	f.Add([]byte("#askt\tv2\t{\"version\":2,\"records\":1}\n0\tk\t1\n"))
	f.Add([]byte("#askt\tv2\t{\"version\":2,\"records\":9}\n0\tk\t1\n"))
	f.Add([]byte("#askt\tv9\tjunk\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, tkvs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if hdr.Version == TraceVersion {
			var out bytes.Buffer
			if _, werr := WriteTimedTrace(&out, hdr, core.SliceTimedStream(tkvs)); werr != nil {
				t.Fatalf("parsed trace failed to re-encode: %v", werr)
			}
		}
	})
}

func BenchmarkReadTimedTrace(b *testing.B) {
	var buf bytes.Buffer
	tkvs := make([]core.TimedKV, 10_000)
	for i := range tkvs {
		tkvs[i] = core.TimedKV{KV: core.KV{Key: fmt.Sprintf("key%04d", i%512), Val: 1}, At: time.Duration(i) * time.Microsecond}
	}
	if _, err := WriteTimedTrace(&buf, TraceHeader{}, core.SliceTimedStream(tkvs)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadTimedTrace(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
