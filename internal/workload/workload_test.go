package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestWordInjective(t *testing.T) {
	lens := NaturalLanguage(0)
	seen := make(map[string]int)
	for r := 0; r < 200000; r++ {
		w := Word(r, lens)
		if prev, dup := seen[w]; dup {
			t.Fatalf("ranks %d and %d both map to %q", prev, r, w)
		}
		seen[w] = r
	}
}

func TestWordNULFree(t *testing.T) {
	f := func(rank uint16) bool {
		w := Word(int(rank), NaturalLanguage(0))
		return !strings.ContainsRune(w, 0) && len(w) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordRespectsLengthModel(t *testing.T) {
	lens := ShortKeys(4)
	for r := 0; r < 1000; r++ {
		w := Word(r, lens)
		// Short ranks encode in few digits; length must be >= model only
		// when digits force it.
		if len(w) < 4 && r < 25*25*25 {
			t.Fatalf("Word(%d) = %q shorter than model", r, w)
		}
	}
	// Frequent natural-language words are short.
	nl := NaturalLanguage(0)
	for r := 0; r < 10; r++ {
		if w := Word(r, nl); len(w) > 3 {
			t.Fatalf("hot word %q (rank %d) too long", w, r)
		}
	}
}

func TestStreamExactLength(t *testing.T) {
	for _, order := range []Order{Shuffled, HotFirst, ColdFirst} {
		spec := Zipf(100, 5000, 1.2, order, 1)
		n := int64(0)
		s := spec.Stream()
		for {
			_, ok := s()
			if !ok {
				break
			}
			n++
		}
		if n != 5000 {
			t.Fatalf("order %v: stream length %d, want 5000", order, n)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	spec := Dataset("yelp", 2000, 7)
	a := core.Collect(spec.Stream())
	b := core.Collect(spec.Stream())
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHotFirstOrdering(t *testing.T) {
	spec := Zipf(50, 2000, 1.3, HotFirst, 1)
	kvs := core.Collect(spec.Stream())
	// The first key must be rank 0 (the hottest), and all its occurrences
	// must be contiguous at the front.
	first := kvs[0].Key
	if first != spec.Key(0) {
		t.Fatalf("first key %q, want rank-0 %q", first, spec.Key(0))
	}
	i := 0
	for i < len(kvs) && kvs[i].Key == first {
		i++
	}
	for _, kv := range kvs[i:] {
		if kv.Key == first {
			t.Fatal("hot key reappears after its block")
		}
	}
}

func TestColdFirstIsReverse(t *testing.T) {
	hot := core.Collect(Zipf(50, 2000, 1.3, HotFirst, 1).Stream())
	cold := core.Collect(Zipf(50, 2000, 1.3, ColdFirst, 1).Stream())
	if len(hot) != len(cold) {
		t.Fatal("length mismatch")
	}
	// Same multiset of tuples: identical references.
	rh := core.Reference(core.OpSum, hot)
	rc := core.Reference(core.OpSum, cold)
	if !rh.Equal(rc) {
		t.Fatalf("orders disagree on content: %s", rh.Diff(rc, 5))
	}
	// And the cold stream starts with the rarest key.
	if cold[0].Key == hot[0].Key {
		t.Fatal("cold-first starts with the hottest key")
	}
}

func TestZipfSkewShape(t *testing.T) {
	spec := Zipf(1000, 100000, 1.3, Shuffled, 3)
	ref := spec.Reference(core.OpSum)
	hot := ref[spec.Key(0)]
	// The hottest key should dominate: at s=1.3 over 1000 keys, rank 0
	// holds a large share.
	if hot < 20000 {
		t.Fatalf("hottest key count %d; skew not applied", hot)
	}
	// Uniform by contrast is flat.
	uref := Uniform(1000, 100000, 3).Reference(core.OpSum)
	umax := int64(0)
	for _, v := range uref {
		if v > umax {
			umax = v
		}
	}
	if umax > 300 {
		t.Fatalf("uniform max count %d; not uniform", umax)
	}
}

func TestCountsSumExactly(t *testing.T) {
	spec := Zipf(777, 123457, 1.1, HotFirst, 1)
	var sum int64
	for _, c := range spec.counts() {
		if c < 0 {
			t.Fatal("negative count")
		}
		sum += c
	}
	if sum != 123457 {
		t.Fatalf("counts sum to %d, want 123457", sum)
	}
}

func TestDatasets(t *testing.T) {
	for _, name := range DatasetNames() {
		spec := Dataset(name, 5000, 1)
		kvs := core.Collect(spec.Stream())
		if len(kvs) != 5000 {
			t.Fatalf("%s: %d tuples", name, len(kvs))
		}
		// Word-count semantics: all values 1.
		for _, kv := range kvs[:100] {
			if kv.Val != 1 {
				t.Fatalf("%s: value %d", name, kv.Val)
			}
		}
	}
}

func TestUnknownDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	Dataset("nope", 10, 1)
}

func TestValueFunction(t *testing.T) {
	spec := Uniform(10, 100, 1)
	spec.Value = func(i int64) int64 { return i }
	kvs := core.Collect(spec.Stream())
	var sum int64
	for _, kv := range kvs {
		sum += kv.Val
	}
	if sum != 99*100/2 {
		t.Fatalf("value function not applied: sum %d", sum)
	}
}
