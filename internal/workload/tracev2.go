package workload

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Trace format v2 — the versioned timed-trace encoding.
//
// A v2 trace is a text file:
//
//	#askt	v2	{"seed":7,"scenario":"flash-crowd","records":50000,...}
//	0	the	1
//	1042	quick	1
//	...
//
// Line 1 is the header: the magic "#askt", the version tag, and a JSON
// metadata object (TraceHeader). Every following line is one record:
// arrival offset in nanoseconds (non-decreasing), key, value, separated by
// tabs. The header's record count makes truncation detectable: a reader
// that sees fewer (or more) records than announced errors out instead of
// silently replaying a prefix.
//
// v1 traces (plain "key<TAB>value" lines, WriteTSV) remain readable:
// ReadTrace sniffs the magic and falls back to the v1 parser with every
// arrival at offset zero.

// TraceMagic starts the header line of every versioned trace.
const TraceMagic = "#askt"

// TraceVersion is the current trace format version.
const TraceVersion = 2

// TraceHeader is the metadata carried by a v2 trace.
type TraceHeader struct {
	// Version is the format version (TraceVersion when writing).
	Version int `json:"version"`
	// Scenario names the generating scenario ("" for ad-hoc traces).
	Scenario string `json:"scenario,omitempty"`
	// Seed is the generator seed the trace was recorded from.
	Seed int64 `json:"seed"`
	// Records is the number of record lines that follow the header.
	Records int64 `json:"records"`
	// Meta carries free-form generator metadata (arrival process, churn
	// model, ...), for humans and provenance — readers do not interpret it.
	Meta map[string]string `json:"meta,omitempty"`
}

// WriteTimedTrace serializes a timed stream as a v2 trace. hdr.Version and
// hdr.Records are filled in by the writer (the stream is buffered first so
// the header can announce the exact record count).
func WriteTimedTrace(w io.Writer, hdr TraceHeader, ts core.TimedStream) (int64, error) {
	tkvs := core.CollectTimed(ts)
	hdr.Version = TraceVersion
	hdr.Records = int64(len(tkvs))
	meta, err := json.Marshal(hdr)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\tv%d\t%s\n", TraceMagic, TraceVersion, meta); err != nil {
		return 0, err
	}
	var last time.Duration
	for i, tkv := range tkvs {
		if strings.ContainsRune(tkv.Key, '\t') || strings.ContainsRune(tkv.Key, '\n') {
			return int64(i), fmt.Errorf("workload: key %q contains a trace delimiter", tkv.Key)
		}
		if tkv.At < last {
			return int64(i), fmt.Errorf("workload: record %d: arrival %v before predecessor %v", i, tkv.At, last)
		}
		last = tkv.At
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%d\n", tkv.At.Nanoseconds(), tkv.Key, tkv.Val); err != nil {
			return int64(i), err
		}
	}
	return int64(len(tkvs)), bw.Flush()
}

// maxTraceLine bounds one trace line; longer lines are a parse error (keys
// are capped far below this everywhere in the system).
const maxTraceLine = 1 << 20

// ReadTimedTrace parses a v2 trace. It validates the magic, version,
// record count (truncation and trailing garbage both error), and arrival
// monotonicity; it never panics on corrupt input.
func ReadTimedTrace(r io.Reader) (TraceHeader, []core.TimedKV, error) {
	br := bufio.NewReader(r)
	hdr, err := readTraceHeader(br)
	if err != nil {
		return TraceHeader{}, nil, err
	}
	tkvs, err := readTimedRecords(br, hdr)
	return hdr, tkvs, err
}

// readTraceHeader parses and validates the v2 header line.
func readTraceHeader(br *bufio.Reader) (TraceHeader, error) {
	line, err := readLine(br, 1)
	if err != nil {
		return TraceHeader{}, err
	}
	parts := strings.SplitN(line, "\t", 3)
	if len(parts) != 3 || parts[0] != TraceMagic {
		return TraceHeader{}, fmt.Errorf("workload: line 1: not a versioned trace header")
	}
	if parts[1] != fmt.Sprintf("v%d", TraceVersion) {
		return TraceHeader{}, fmt.Errorf("workload: line 1: unsupported trace version %q (have v%d)", parts[1], TraceVersion)
	}
	var hdr TraceHeader
	dec := json.NewDecoder(strings.NewReader(parts[2]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hdr); err != nil {
		return TraceHeader{}, fmt.Errorf("workload: line 1: bad trace metadata: %w", err)
	}
	if hdr.Version != TraceVersion {
		return TraceHeader{}, fmt.Errorf("workload: line 1: metadata version %d does not match tag v%d", hdr.Version, TraceVersion)
	}
	if hdr.Records < 0 {
		return TraceHeader{}, fmt.Errorf("workload: line 1: negative record count %d", hdr.Records)
	}
	return hdr, nil
}

// readTimedRecords parses exactly hdr.Records record lines.
func readTimedRecords(br *bufio.Reader, hdr TraceHeader) ([]core.TimedKV, error) {
	out := make([]core.TimedKV, 0, min(hdr.Records, 1<<20))
	var last time.Duration
	for i := int64(0); i < hdr.Records; i++ {
		lineNo := int(i) + 2 // 1-based; header is line 1
		line, err := readLine(br, lineNo)
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("workload: truncated trace: %d of %d records (line %d)", i, hdr.Records, lineNo)
		}
		if err != nil {
			return nil, err
		}
		at := strings.IndexByte(line, '\t')
		if at < 0 {
			return nil, fmt.Errorf("workload: line %d: no arrival-time field", lineNo)
		}
		ns, err := strconv.ParseInt(line[:at], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad arrival time: %w", lineNo, err)
		}
		if ns < 0 {
			return nil, fmt.Errorf("workload: line %d: negative arrival time %d", lineNo, ns)
		}
		rest := line[at+1:]
		tab := strings.LastIndexByte(rest, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("workload: line %d: no key/value separator", lineNo)
		}
		val, err := strconv.ParseInt(rest[tab+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad value: %w", lineNo, err)
		}
		arr := time.Duration(ns)
		if arr < last {
			return nil, fmt.Errorf("workload: line %d: arrival %v before predecessor %v", lineNo, arr, last)
		}
		last = arr
		out = append(out, core.TimedKV{KV: core.KV{Key: rest[:tab], Val: val}, At: arr})
	}
	// Anything after the announced records is corruption, not slack.
	if extra, err := readLine(br, int(hdr.Records)+2); err == nil {
		return nil, fmt.Errorf("workload: line %d: %d record(s) announced but more data follows (%q...)",
			int(hdr.Records)+2, hdr.Records, clip(extra, 32))
	} else if !errors.Is(err, io.EOF) {
		return nil, err
	}
	return out, nil
}

// ReadTrace reads a trace of either version, sniffing the header: v2 traces
// parse fully timed; v1 TSV traces (no magic) parse with every arrival at
// offset zero and a zero-value header with Version 1.
func ReadTrace(r io.Reader) (TraceHeader, []core.TimedKV, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(TraceMagic))
	if err == nil && string(magic) == TraceMagic {
		return ReadTimedTrace(br)
	}
	kvs, err := ReadTSV(br)
	if err != nil {
		return TraceHeader{}, nil, err
	}
	tkvs := make([]core.TimedKV, len(kvs))
	for i, kv := range kvs {
		tkvs[i] = core.TimedKV{KV: kv}
	}
	return TraceHeader{Version: 1, Records: int64(len(kvs))}, tkvs, nil
}

// SplitTimedRoundRobin deals a timed trace to n senders, preserving
// per-sender order (and therefore per-sender arrival monotonicity).
func SplitTimedRoundRobin(tkvs []core.TimedKV, n int) [][]core.TimedKV {
	out := make([][]core.TimedKV, n)
	for i, tkv := range tkvs {
		out[i%n] = append(out[i%n], tkv)
	}
	return out
}

// readLine reads one \n-terminated line (the final line may omit the
// terminator), bounding its length; io.EOF means no more lines.
func readLine(br *bufio.Reader, lineNo int) (string, error) {
	line, err := br.ReadString('\n')
	if errors.Is(err, io.EOF) {
		if line == "" {
			return "", io.EOF
		}
		err = nil
	}
	if err != nil {
		return "", fmt.Errorf("workload: line %d: %w", lineNo, err)
	}
	if len(line) > maxTraceLine {
		return "", fmt.Errorf("workload: line %d: exceeds %d bytes", lineNo, maxTraceLine)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
