package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteTSV serializes a stream as one "key<TAB>value" line per tuple — the
// trace format cmd/askgen emits and cmd/asksim replays.
func WriteTSV(w io.Writer, s core.Stream) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for {
		kv, ok := s()
		if !ok {
			break
		}
		if strings.ContainsRune(kv.Key, '\t') || strings.ContainsRune(kv.Key, '\n') {
			return n, fmt.Errorf("workload: key %q contains a TSV delimiter", kv.Key)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", kv.Key, kv.Val); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadTSV parses a trace written by WriteTSV.
func ReadTSV(r io.Reader) ([]core.KV, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []core.KV
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		tab := strings.LastIndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("workload: line %d: no tab separator", line)
		}
		val, err := strconv.ParseInt(text[tab+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad value: %w", line, err)
		}
		out = append(out, core.KV{Key: text[:tab], Val: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SplitRoundRobin deals a trace to n senders, preserving per-sender order.
func SplitRoundRobin(kvs []core.KV, n int) [][]core.KV {
	out := make([][]core.KV, n)
	for i, kv := range kvs {
		out[i%n] = append(out[i%n], kv)
	}
	return out
}
