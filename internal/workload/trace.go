package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// WriteTSV serializes a stream as one "key<TAB>value" line per tuple — the
// trace format cmd/askgen emits and cmd/asksim replays.
func WriteTSV(w io.Writer, s core.Stream) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for {
		kv, ok := s()
		if !ok {
			break
		}
		if strings.ContainsRune(kv.Key, '\t') || strings.ContainsRune(kv.Key, '\n') {
			return n, fmt.Errorf("workload: key %q contains a TSV delimiter", kv.Key)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", kv.Key, kv.Val); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// maxTSVLine bounds one v1 trace line (key + value); a longer line is a
// parse error, reported with its line number rather than truncated.
const maxTSVLine = 1 << 20

// ReadTSV parses a trace written by WriteTSV. Parse and scan errors carry
// the 1-based line number of the offending line; an over-long line is
// reported explicitly (bufio.Scanner's ErrTooLong, which would otherwise
// surface as a bare "token too long" with no location).
func ReadTSV(r io.Reader) ([]core.KV, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTSVLine)
	var out []core.KV
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		tab := strings.LastIndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("workload: line %d: no tab separator", line)
		}
		val, err := strconv.ParseInt(text[tab+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad value: %w", line, err)
		}
		out = append(out, core.KV{Key: text[:tab], Val: val})
	}
	if err := sc.Err(); err != nil {
		// The failed read is the line after the last delivered token.
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("workload: line %d: exceeds %d bytes: %w", line+1, maxTSVLine, err)
		}
		return nil, fmt.Errorf("workload: line %d: %w", line+1, err)
	}
	return out, nil
}

// SplitRoundRobin deals a trace to n senders, preserving per-sender order.
func SplitRoundRobin(kvs []core.KV, n int) [][]core.KV {
	out := make([][]core.KV, n)
	for i, kv := range kvs {
		out[i%n] = append(out[i%n], kv)
	}
	return out
}
