// Package workload generates deterministic key-value streams for the
// evaluation: uniform and Zipf-skewed synthetic streams with controllable
// arrival order (Fig. 9), and synthetic stand-ins for the paper's production
// corpora — yelp, 20-Newsgroups (NG), the Blog Authorship Corpus (BAC), and
// the Large Movie Review Dataset (LMDB) — parameterized by distinct-key
// count, Zipf exponent, and a rank-correlated key-length model (Table 1 and
// Fig. 8(b) depend only on those properties).
//
// All streams are seeded and replayable: Spec.Stream returns a fresh
// iterator each call, and Spec.Reference replays one to compute the exact
// expected aggregation.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Order controls the arrival order of tuples in a stream (§5.4).
type Order uint8

const (
	// Shuffled draws keys independently per tuple (real-time streaming).
	Shuffled Order = iota
	// HotFirst emits all tuples of the most frequent key first ("Zipf"
	// in Fig. 9: hot keys in the front).
	HotFirst
	// ColdFirst reverses HotFirst ("Zipf (reverse)": cold keys first).
	ColdFirst
)

func (o Order) String() string {
	switch o {
	case Shuffled:
		return "shuffled"
	case HotFirst:
		return "hot-first"
	case ColdFirst:
		return "cold-first"
	default:
		return "invalid"
	}
}

// KeyLenModel maps a key's popularity rank to its byte length. Natural
// language keys follow the law of abbreviation: frequent words are short.
type KeyLenModel func(rank int) int

// ShortKeys returns keys of exactly n bytes regardless of rank (the
// microbenchmarks' fixed 4-byte keys).
func ShortKeys(n int) KeyLenModel { return func(int) int { return n } }

// NaturalLanguage mimics word-length statistics: ranks under 10 get 2–3
// characters, under 100 get 3–5, under 1000 get 4–7, the tail 5–13, with
// longTail shifting the whole distribution up (0 = English-like).
func NaturalLanguage(longTail int) KeyLenModel {
	return func(rank int) int {
		h := mix(uint64(rank) * 0x9e3779b97f4a7c15)
		var lo, span int
		switch {
		case rank < 10:
			lo, span = 2, 2
		case rank < 100:
			lo, span = 3, 3
		case rank < 1000:
			lo, span = 4, 4
		default:
			lo, span = 5, 9
		}
		return lo + longTail + int(h%uint64(span))
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// Word deterministically names the key of a given rank under a length
// model: an injective base-25 encoding of the rank (letters b–z), padded to
// the model's length with rank-derived letters (letter 'a' is excluded from
// the prefix so padding cannot create collisions).
func Word(rank int, lens KeyLenModel) string {
	// Base-25 digits of rank+1 using b..z.
	var digits []byte
	v := rank + 1
	for v > 0 {
		digits = append(digits, byte('b'+v%25))
		v /= 25
	}
	target := lens(rank)
	if target < len(digits)+1 {
		target = len(digits) + 1
	}
	out := make([]byte, 0, target)
	out = append(out, digits...)
	out = append(out, 'a') // separator: prefix is 'a'-free, so injective
	h := mix(uint64(rank)*0x2545f4914f6cdd1d + 1)
	for len(out) < target {
		out = append(out, byte('a'+h%26))
		h = mix(h)
	}
	return string(out)
}

// Spec describes one generated stream.
type Spec struct {
	// Name labels the workload in reports.
	Name string
	// Distinct is the number of distinct keys.
	Distinct int
	// Tuples is the stream length.
	Tuples int64
	// Skew is the Zipf exponent s (> 1 for the stdlib sampler); 0 means
	// uniform key frequencies.
	Skew float64
	// Order is the arrival order.
	Order Order
	// KeyLens maps rank to key length (nil: 4-byte short keys).
	KeyLens KeyLenModel
	// Keys overrides the generated vocabulary: rank r uses Keys[r]. Used by
	// microbenchmarks that need slot-balanced key pools.
	Keys []string
	// Value returns the tuple value for the i-th emission (nil: always 1,
	// WordCount semantics).
	Value func(i int64) int64
	// Seed drives sampling.
	Seed int64
}

// lens returns the effective key-length model.
func (s Spec) lens() KeyLenModel {
	if s.KeyLens != nil {
		return s.KeyLens
	}
	return ShortKeys(4)
}

// Key returns the rank-th key of this workload.
func (s Spec) Key(rank int) string {
	if s.Keys != nil {
		return s.Keys[rank]
	}
	return Word(rank, s.lens())
}

// counts returns the exact per-rank tuple counts for ordered emission:
// cumulative rounding keeps the total exactly Tuples.
func (s Spec) counts() []int64 {
	cdf := make([]float64, s.Distinct+1)
	for r := 1; r <= s.Distinct; r++ {
		p := 1.0
		if s.Skew > 0 {
			p = 1 / math.Pow(float64(r), s.Skew)
		}
		cdf[r] = cdf[r-1] + p
	}
	total := cdf[s.Distinct]
	counts := make([]int64, s.Distinct)
	var before int64
	for r := 1; r <= s.Distinct; r++ {
		upto := int64(math.Round(float64(s.Tuples) * cdf[r] / total))
		counts[r-1] = upto - before
		before = upto
	}
	return counts
}

// Stream returns a fresh deterministic iterator over the workload.
func (s Spec) Stream() core.Stream {
	if s.Distinct <= 0 || s.Tuples < 0 {
		panic(fmt.Sprintf("workload: invalid spec %+v", s))
	}
	if s.Keys != nil && len(s.Keys) < s.Distinct {
		panic(fmt.Sprintf("workload: %d keys for %d distinct", len(s.Keys), s.Distinct))
	}
	value := s.Value
	if value == nil {
		value = func(int64) int64 { return 1 }
	}
	lens := s.lens()
	// Key-string cache: rank → word, built lazily (hot ranks dominate).
	// Rank-indexed slice, not a map: the lookup is on the per-tuple fast
	// path of every generated stream, and an array index beats a map probe.
	// Word never returns "" (it always emits at least the rank digits), so
	// the empty string doubles as the not-yet-built sentinel.
	cache := make([]string, s.Distinct)
	key := func(rank int) string {
		if s.Keys != nil {
			return s.Keys[rank]
		}
		if w := cache[rank]; w != "" {
			return w
		}
		w := Word(rank, lens)
		cache[rank] = w
		return w
	}
	_ = lens

	var i int64
	switch s.Order {
	case Shuffled:
		rng := rand.New(rand.NewSource(s.Seed))
		var zipf *rand.Zipf
		if s.Skew > 0 {
			sk := s.Skew
			if sk <= 1 {
				sk = 1.0001 // stdlib sampler requires s > 1
			}
			zipf = rand.NewZipf(rng, sk, 1, uint64(s.Distinct-1))
		}
		return func() (core.KV, bool) {
			if i >= s.Tuples {
				return core.KV{}, false
			}
			var rank int
			if zipf != nil {
				rank = int(zipf.Uint64())
			} else {
				rank = rng.Intn(s.Distinct)
			}
			kv := core.KV{Key: key(rank), Val: value(i)}
			i++
			return kv, true
		}
	case HotFirst, ColdFirst:
		counts := s.counts()
		idx := 0
		if s.Order == ColdFirst {
			idx = len(counts) - 1
		}
		step := 1
		if s.Order == ColdFirst {
			step = -1
		}
		var left int64
		if len(counts) > 0 {
			left = counts[idx]
		}
		return func() (core.KV, bool) {
			for left == 0 {
				idx += step
				if idx < 0 || idx >= len(counts) {
					return core.KV{}, false
				}
				left = counts[idx]
			}
			if i >= s.Tuples {
				return core.KV{}, false
			}
			left--
			kv := core.KV{Key: key(idx), Val: value(i)}
			i++
			return kv, true
		}
	default:
		panic("workload: unknown order")
	}
}

// Reference replays a fresh stream and returns the exact aggregation.
func (s Spec) Reference(op core.Op) core.Result {
	return core.ReferenceStreams(op, s.Stream())
}

// Uniform returns a uniform workload over distinct 4-byte-ish keys.
func Uniform(distinct int, tuples int64, seed int64) Spec {
	return Spec{Name: "uniform", Distinct: distinct, Tuples: tuples, Seed: seed}
}

// Zipf returns a Zipf(s) workload in the given order.
func Zipf(distinct int, tuples int64, skew float64, order Order, seed int64) Spec {
	name := "zipf"
	switch order {
	case HotFirst:
		name = "zipf-hot-first"
	case ColdFirst:
		name = "zipf-reverse"
	}
	return Spec{Name: name, Distinct: distinct, Tuples: tuples, Skew: skew, Order: order, Seed: seed}
}

// Dataset returns the synthetic stand-in for one of the paper's production
// corpora, scaled to the given tuple count. The parameters (distinct
// vocabulary, Zipf exponent, key-length shift) are set so the slot-fill and
// switch-absorption behaviour lands in the regime Table 1 and Fig. 8(b)
// report; they are substitutes for the real corpora, not copies.
func Dataset(name string, tuples int64, seed int64) Spec {
	switch name {
	case "yelp":
		// Reviews: large vocabulary, strong skew — the worst packer
		// (Fig. 8(b): average 16.91 valid tuples per packet).
		return Spec{Name: name, Distinct: 200_000, Tuples: tuples, Skew: 1.12,
			Order: Shuffled, KeyLens: NaturalLanguage(0), Seed: seed}
	case "NG":
		// 20 Newsgroups: smaller vocabulary, moderate skew.
		return Spec{Name: name, Distinct: 60_000, Tuples: tuples, Skew: 1.04,
			Order: Shuffled, KeyLens: NaturalLanguage(0), Seed: seed}
	case "BAC":
		// Blog corpus: colloquial text, lighter tail.
		return Spec{Name: name, Distinct: 120_000, Tuples: tuples, Skew: 1.02,
			Order: Shuffled, KeyLens: NaturalLanguage(0), Seed: seed}
	case "LMDB":
		// Movie reviews: mid-size vocabulary.
		return Spec{Name: name, Distinct: 90_000, Tuples: tuples, Skew: 1.06,
			Order: Shuffled, KeyLens: NaturalLanguage(0), Seed: seed}
	default:
		panic(fmt.Sprintf("workload: unknown dataset %q", name))
	}
}

// DatasetNames lists the corpora stand-ins in the paper's order.
func DatasetNames() []string { return []string{"yelp", "NG", "BAC", "LMDB"} }
