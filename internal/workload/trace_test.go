package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTSVRoundtrip(t *testing.T) {
	spec := Dataset("NG", 2000, 3)
	var buf bytes.Buffer
	n, err := WriteTSV(&buf, spec.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("wrote %d tuples", n)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Collect(spec.Stream())
	if len(got) != len(want) {
		t.Fatalf("read %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestTSVNegativeValues(t *testing.T) {
	var buf bytes.Buffer
	in := []core.KV{{Key: "a", Val: -42}, {Key: "b", Val: 0}}
	if _, err := WriteTSV(&buf, core.SliceStream(in)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Val != -42 || got[1].Val != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestTSVRejectsDelimiterKeys(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTSV(&buf, core.SliceStream([]core.KV{{Key: "a\tb", Val: 1}})); err == nil {
		t.Fatal("tab key accepted")
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("notab\n")); err == nil {
		t.Fatal("missing tab accepted")
	}
	if _, err := ReadTSV(strings.NewReader("k\tnotanumber\n")); err == nil {
		t.Fatal("bad value accepted")
	}
	got, err := ReadTSV(strings.NewReader("k\t5\n\nq\t7\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("blank-line handling: %v %v", got, err)
	}
}

func TestSplitRoundRobin(t *testing.T) {
	kvs := []core.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}, {Key: "c", Val: 3}, {Key: "d", Val: 4}, {Key: "e", Val: 5}}
	parts := SplitRoundRobin(kvs, 2)
	if len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Fatalf("split sizes %d/%d", len(parts[0]), len(parts[1]))
	}
	all := append(append([]core.KV{}, parts[0]...), parts[1]...)
	if !core.Reference(core.OpSum, all).Equal(core.Reference(core.OpSum, kvs)) {
		t.Fatal("split lost tuples")
	}
}
