package scenario

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestCorpusRegistry(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("corpus has %d scenarios, want >= 10", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Desc == "" || s.Stressor == "" {
			t.Errorf("scenario %+v missing name/desc/stressor", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Tuples <= 0 {
			t.Errorf("%s: non-positive tuple count", s.Name)
		}
		got, err := ByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("ByName(%q): %v", s.Name, err)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("ByName accepted an unknown name")
	}
}

// encode renders a scenario's full trace to bytes.
func encode(t *testing.T, s Scenario) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := workload.WriteTimedTrace(&buf, s.Header(), s.TimedStream()); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return buf.Bytes()
}

// TestCorpusDeterminism is the corpus's reproducibility lock: every
// registered scenario must produce a byte-identical trace on regeneration
// from its seed (CI runs this under -race, so any hidden shared state or
// wall-clock leak also surfaces here).
func TestCorpusDeterminism(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			a, b := encode(t, s), encode(t, s)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: regenerated trace differs from first generation", s.Name)
			}
			c := encode(t, s.WithSeed(s.Seed+1))
			if bytes.Equal(a, c) {
				t.Fatalf("%s: different seed produced an identical trace", s.Name)
			}
		})
	}
}

func TestCorpusStreamsWellFormed(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			tkvs := core.CollectTimed(s.TimedStream())
			if int64(len(tkvs)) != s.Tuples {
				t.Fatalf("%d tuples, want %d", len(tkvs), s.Tuples)
			}
			var last time.Duration
			for i, tkv := range tkvs {
				if tkv.At < last {
					t.Fatalf("tuple %d: arrival %v before %v", i, tkv.At, last)
				}
				last = tkv.At
				if tkv.Key == "" {
					t.Fatalf("tuple %d: empty key", i)
				}
				if tkv.Val < 1 {
					t.Fatalf("tuple %d: value %d < 1", i, tkv.Val)
				}
			}
			if last == 0 {
				t.Fatal("stream never advances time")
			}
		})
	}
}

// TestRotationChurnsHotKey asserts the time-varying Zipf actually varies:
// under hot-set rotation the dominant key of an early window differs from
// the dominant key of a late one.
func TestRotationChurnsHotKey(t *testing.T) {
	s, err := ByName("hot-rotate")
	if err != nil {
		t.Fatal(err)
	}
	tkvs := core.CollectTimed(s.TimedStream())
	third := len(tkvs) / 3
	top := func(window []core.TimedKV) string {
		counts := map[string]int{}
		best, bestN := "", -1
		for _, tkv := range window {
			counts[tkv.Key]++
			if counts[tkv.Key] > bestN {
				best, bestN = tkv.Key, counts[tkv.Key]
			}
		}
		return best
	}
	early, late := top(tkvs[:third]), top(tkvs[2*third:])
	if early == late {
		t.Fatalf("hot key never rotated: %q dominates both early and late windows", early)
	}
}

// TestCardinalityGrows asserts key-cardinality growth: the late window of
// the ramp scenario uses many more distinct keys than the early window.
func TestCardinalityGrows(t *testing.T) {
	s, err := ByName("cardinality-ramp")
	if err != nil {
		t.Fatal(err)
	}
	tkvs := core.CollectTimed(s.TimedStream())
	third := len(tkvs) / 3
	distinct := func(window []core.TimedKV) int {
		set := map[string]bool{}
		for _, tkv := range window {
			set[tkv.Key] = true
		}
		return len(set)
	}
	early, late := distinct(tkvs[:third]), distinct(tkvs[2*third:])
	if late < early*2 {
		t.Fatalf("cardinality did not ramp: %d early vs %d late distinct keys", early, late)
	}
}

// TestBurstsAreCorrelated asserts burst tuples land in tight key
// neighborhoods: the burst scenario shows runs of near-identical arrival
// times whose tuple count greatly exceeds the Poisson baseline's.
func TestBurstsAreCorrelated(t *testing.T) {
	s, err := ByName("burst-correlated")
	if err != nil {
		t.Fatal(err)
	}
	tkvs := core.CollectTimed(s.TimedStream())
	// Count maximal runs of gap <= Burst.Gap; the overlay guarantees runs
	// of exactly Size tuples, far longer than Poisson at 8e5/s produces by
	// chance at 200 ns spacing.
	longest := 0
	run := 1
	for i := 1; i < len(tkvs); i++ {
		if tkvs[i].At-tkvs[i-1].At <= s.Burst.Gap {
			run++
		} else {
			run = 1
		}
		if run > longest {
			longest = run
		}
	}
	if longest < s.Burst.Size {
		t.Fatalf("longest tight run %d tuples, want >= burst size %d", longest, s.Burst.Size)
	}
}

// TestTraceRoundTripCorpus round-trips every corpus scenario through
// encode → decode and compares the decoded records to the generator.
func TestTraceRoundTripCorpus(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			raw := encode(t, s)
			hdr, tkvs, err := workload.ReadTimedTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Scenario != s.Name || hdr.Seed != s.Seed || hdr.Records != s.Tuples {
				t.Fatalf("header: %+v", hdr)
			}
			want := core.CollectTimed(s.TimedStream())
			if len(want) != len(tkvs) {
				t.Fatalf("decoded %d records, want %d", len(tkvs), len(want))
			}
			for i := range want {
				if tkvs[i] != want[i] {
					t.Fatalf("record %d: decoded %+v want %+v", i, tkvs[i], want[i])
				}
			}
		})
	}
}

func BenchmarkScenarioGenerate(b *testing.B) {
	s, err := ByName("mixed-diurnal-growth")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := s.TimedStream()
		for {
			if _, ok := ts(); !ok {
				break
			}
		}
	}
}
