// Package scenario is the trace-driven workload engine: it turns
// composable temporal arrival processes (Poisson, MMPP bursts, multi-period
// diurnal profiles), time-varying Zipf popularity with hot-key churn and
// cardinality growth, and correlated burst groups into timed key-value
// streams (core.TimedStream). Every stream is seed-deterministic: the same
// Scenario value always produces a byte-identical trace, which is what the
// committed corpus (corpus.go), the replay golden tests, and the scenario
// sweep experiment rely on.
//
// A Scenario records to the versioned trace format via
// workload.WriteTimedTrace (cmd/askgen -scenario) and replays through the
// full protocol stack via ask.AggregateTimed (cmd/asksim -replay).
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Burst overlays correlated burst groups on the base arrival process: burst
// events arrive as a Poisson process of their own, and each one injects a
// tightly spaced group of tuples drawn from one narrow, randomly anchored
// key range — the "correlated flash on a key neighborhood" pattern (many
// users hitting one shard of the keyspace at once).
type Burst struct {
	Rate float64       // bursts per second of stream time
	Size int           // tuples per burst
	Gap  time.Duration // spacing between tuples inside a burst
	Span int           // width of the correlated key group
}

func (b Burst) String() string {
	return fmt.Sprintf("burst(%.3g/s×%d@%v,span=%d)", b.Rate, b.Size, b.Gap, b.Span)
}

// Scenario is one named, fully parameterized timed workload.
type Scenario struct {
	// Name is the registry key; Desc one line for listings.
	Name string
	Desc string
	// Stressor states which subsystem the shape is designed to load
	// (documentation, EXPERIMENTS.md corpus table).
	Stressor string

	// Arrival is the temporal process; Keys the popularity process; Burst
	// an optional correlated-burst overlay.
	Arrival Arrival
	Keys    KeyModel
	Burst   *Burst

	// Tuples is the stream length; Seed drives every RNG stream.
	Tuples int64
	Seed   int64

	// LongTail shifts the key-length distribution up (0 = English-like;
	// see workload.NaturalLanguage).
	LongTail int
	// ValRange, when positive, draws values uniformly from [1, ValRange];
	// zero emits the WordCount constant 1.
	ValRange int64
}

// Sub-stream salts: each concern gets an independent deterministic RNG so
// e.g. adding drift to the key model cannot perturb arrival times.
const (
	saltArrival = 0x5bd1e995
	saltKeys    = 0x9e3779b9
	saltBurst   = 0x85ebca6b
	saltValues  = 0xc2b2ae35
)

func (s Scenario) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed*0x100000001b3 + salt))
}

// WithTuples returns a copy with a different stream length (benchmarks
// scale the corpus shapes up without redefining them).
func (s Scenario) WithTuples(n int64) Scenario {
	s.Tuples = n
	return s
}

// WithSeed returns a copy with a different seed.
func (s Scenario) WithSeed(seed int64) Scenario {
	s.Seed = seed
	return s
}

// TimedStream returns a fresh deterministic timed iterator over the
// scenario: Tuples arrivals in non-decreasing time order, keys named by the
// rank-correlated length model.
func (s Scenario) TimedStream() core.TimedStream {
	if s.Tuples < 0 || s.Arrival == nil || s.Keys == nil {
		panic(fmt.Sprintf("scenario: invalid scenario %+v", s))
	}
	clock := s.Arrival.Clock(s.rng(saltArrival))
	picker := s.Keys.Picker(s.rng(saltKeys))
	var burstRNG *rand.Rand
	if s.Burst != nil {
		burstRNG = s.rng(saltBurst)
	}
	var valRNG *rand.Rand
	if s.ValRange > 0 {
		valRNG = s.rng(saltValues)
	}
	lens := workload.NaturalLanguage(s.LongTail)
	// Key-string cache, index-addressed like workload.Spec.Stream's: hot
	// indices dominate, and "" never names a real key.
	cache := make([]string, s.Keys.MaxKeys())
	key := func(idx int) string {
		if w := cache[idx]; w != "" {
			return w
		}
		w := workload.Word(idx, lens)
		cache[idx] = w
		return w
	}
	value := func() int64 {
		if valRNG == nil {
			return 1
		}
		return 1 + valRNG.Int63n(s.ValRange)
	}

	var emitted int64
	var now time.Duration // time of the last base-process arrival
	// Pending burst state: burstLeft tuples remain, spaced Burst.Gap from
	// burstAt, keys in [burstAnchor, burstAnchor+Span).
	var nextBurst time.Duration = -1
	if s.Burst != nil {
		nextBurst = expDur(burstRNG, s.Burst.Rate)
	}
	var burstAt time.Duration
	var burstLeft, burstAnchor int
	maxKeys := s.Keys.MaxKeys()

	return func() (core.TimedKV, bool) {
		if emitted >= s.Tuples {
			return core.TimedKV{}, false
		}
		emitted++
		// Drain an active burst first: its tuples are the earliest pending
		// arrivals by construction (they trail burstAt by at most Size·Gap,
		// and the next base arrival was pushed past it below).
		if burstLeft > 0 {
			at := burstAt
			burstAt += s.Burst.Gap
			burstLeft--
			idx := burstAnchor + burstRNG.Intn(s.Burst.Span)
			if idx >= maxKeys {
				idx = maxKeys - 1
			}
			return core.TimedKV{KV: core.KV{Key: key(idx), Val: value()}, At: at}, true
		}
		next := now + clock(now)
		if nextBurst >= 0 && nextBurst <= next {
			// A burst fires before the next base arrival: anchor a key
			// group and start draining. Base time resumes at the burst's
			// end (bursts add load on top of the base process), and the
			// next burst cannot start before this one finishes — both keep
			// the emitted arrival sequence non-decreasing.
			burstAt = nextBurst
			burstLeft = s.Burst.Size
			span := s.Burst.Span
			if span < 1 {
				span = 1
			}
			anchorMax := maxKeys - span
			if anchorMax < 1 {
				anchorMax = 1
			}
			burstAnchor = burstRNG.Intn(anchorMax)
			end := burstAt + s.Burst.Gap*time.Duration(s.Burst.Size-1)
			now = end
			nextBurst += expDur(burstRNG, s.Burst.Rate)
			if nextBurst < end {
				nextBurst = end
			}
			at := burstAt
			burstAt += s.Burst.Gap
			burstLeft--
			idx := burstAnchor + burstRNG.Intn(span)
			if idx >= maxKeys {
				idx = maxKeys - 1
			}
			return core.TimedKV{KV: core.KV{Key: key(idx), Val: value()}, At: at}, true
		}
		now = next
		return core.TimedKV{KV: core.KV{Key: key(picker(now)), Val: value()}, At: now}, true
	}
}

// Stream is the untimed projection (arrival order preserved, times
// dropped) — for reference aggregation and stats.
func (s Scenario) Stream() core.Stream { return s.TimedStream().Untimed() }

// Reference replays a fresh stream and returns the exact aggregation.
func (s Scenario) Reference(op core.Op) core.Result {
	return core.ReferenceStreams(op, s.Stream())
}

// Header returns the trace header recording this scenario's identity and
// generator parameters — what cmd/askgen stamps on recorded traces.
func (s Scenario) Header() workload.TraceHeader {
	meta := map[string]string{
		"arrival": s.Arrival.String(),
		"keys":    s.Keys.String(),
	}
	if s.Burst != nil {
		meta["burst"] = s.Burst.String()
	}
	if s.Stressor != "" {
		meta["stressor"] = s.Stressor
	}
	return workload.TraceHeader{
		Scenario: s.Name,
		Seed:     s.Seed,
		Meta:     meta,
	}
}
