package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// KeyModel describes a (possibly time-varying) key-popularity process.
// Picker instantiates a deterministic rank picker bound to one seeded RNG.
type KeyModel interface {
	Picker(rng *rand.Rand) Picker
	// MaxKeys is the largest key index the model can emit plus one (sizes
	// vocabulary caches).
	MaxKeys() int
	String() string
}

// Picker returns the key index of the tuple arriving at stream time now.
type Picker func(now time.Duration) int

// ZipfChurn is a truncated Zipf(s) popularity law over a key vocabulary
// whose identity and size both vary with time:
//
//   - Popularity rank r (0 = hottest) is drawn from P(r) ∝ 1/(r+1)^Skew over
//     the current cardinality K(t) (Skew 0 = uniform).
//   - A rank permutation maps popularity rank → key identity. Rotation
//     shifts the permutation's hottest RotateWindow entries by RotateStep
//     every RotatePeriod (hot-set churn in discrete jumps: RotateStep ==
//     RotateWindow/2 is a square-wave "antagonist flip" of two hot
//     populations). Drift applies DriftRate random hot↔random swaps per
//     second (gradual popularity churn).
//   - K(t) = min(MaxDistinct, Distinct + GrowthPerSec·t) models vocabulary
//     growth: fresh key identities enter the tail over the stream's life.
//
// Everything is driven by the picker's RNG, so a seed reproduces the exact
// rank sequence.
type ZipfChurn struct {
	Distinct     int           // cardinality at t = 0
	MaxDistinct  int           // cardinality cap under growth (0: Distinct)
	GrowthPerSec float64       // keys entering per second of stream time
	Skew         float64       // Zipf exponent (0 = uniform)
	RotatePeriod time.Duration // hot-set rotation period (0: no rotation)
	RotateWindow int           // ranks participating in rotation
	RotateStep   int           // rotation shift per period
	DriftRate    float64       // random permutation swaps per second
}

func (z ZipfChurn) MaxKeys() int {
	if z.MaxDistinct > z.Distinct {
		return z.MaxDistinct
	}
	return z.Distinct
}

func (z ZipfChurn) cardinality(t time.Duration) int {
	k := z.Distinct
	if z.GrowthPerSec > 0 {
		k += int(z.GrowthPerSec * t.Seconds())
	}
	if max := z.MaxKeys(); k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (z ZipfChurn) Picker(rng *rand.Rand) Picker {
	max := z.MaxKeys()
	if max <= 0 {
		panic("scenario: ZipfChurn needs a positive Distinct")
	}
	// cum[r] = Σ_{i≤r} 1/(i+1)^Skew: truncated-Zipf inverse-CDF sampling
	// that stays exact while the cardinality bound K(t) moves.
	var cum []float64
	if z.Skew > 0 {
		cum = make([]float64, max)
		acc := 0.0
		for r := 0; r < max; r++ {
			acc += 1 / math.Pow(float64(r+1), z.Skew)
			cum[r] = acc
		}
	}
	perm := make([]int32, max)
	for i := range perm {
		perm[i] = int32(i)
	}
	rotWindow := z.RotateWindow
	if rotWindow > max {
		rotWindow = max
	}
	var nextRotate time.Duration = z.RotatePeriod
	var nextDrift time.Duration
	if z.DriftRate > 0 {
		nextDrift = expDur(rng, z.DriftRate)
	}
	scratch := make([]int32, rotWindow)
	return func(now time.Duration) int {
		// Apply churn events due by now, in order, so the permutation's
		// evolution depends only on (seed, arrival sequence).
		for {
			rotDue := z.RotatePeriod > 0 && rotWindow > 1 && now >= nextRotate
			driftDue := z.DriftRate > 0 && now >= nextDrift
			switch {
			case rotDue && (!driftDue || nextRotate <= nextDrift):
				step := z.RotateStep % rotWindow
				if step != 0 {
					copy(scratch, perm[:rotWindow])
					for i := 0; i < rotWindow; i++ {
						perm[i] = scratch[(i+step)%rotWindow]
					}
				}
				nextRotate += z.RotatePeriod
			case driftDue:
				// Swap a hot rank with a uniformly random one: hot keys
				// decay into the tail, tail keys surface.
				hotSpan := rotWindow
				if hotSpan < 2 {
					hotSpan = max / 8
					if hotSpan < 2 {
						hotSpan = 2
					}
				}
				a, b := rng.Intn(hotSpan), rng.Intn(max)
				perm[a], perm[b] = perm[b], perm[a]
				nextDrift += expDur(rng, z.DriftRate)
			default:
				k := z.cardinality(now)
				var rank int
				if cum == nil {
					rank = rng.Intn(k)
				} else {
					u := rng.Float64() * cum[k-1]
					rank = sort.SearchFloat64s(cum[:k], u)
				}
				return int(perm[rank])
			}
		}
	}
}

func (z ZipfChurn) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("zipf(s=%.2f,k=%d)", z.Skew, z.Distinct))
	if z.MaxDistinct > z.Distinct && z.GrowthPerSec > 0 {
		parts = append(parts, fmt.Sprintf("grow(%.3g/s→%d)", z.GrowthPerSec, z.MaxDistinct))
	}
	if z.RotatePeriod > 0 && z.RotateWindow > 1 {
		parts = append(parts, fmt.Sprintf("rotate(%d/%d@%v)", z.RotateStep, z.RotateWindow, z.RotatePeriod))
	}
	if z.DriftRate > 0 {
		parts = append(parts, fmt.Sprintf("drift(%.3g/s)", z.DriftRate))
	}
	return strings.Join(parts, "+")
}
