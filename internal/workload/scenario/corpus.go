package scenario

import (
	"fmt"
	"sort"
	"time"
)

// The committed scenario corpus: named, seed-pinned workload shapes that
// every perf and chaos PR runs against (ROADMAP item 3). Rates are scaled
// to the simulator's virtual-time regime — megatuples per second against
// the 100 Gbps rack — so a corpus stream spans tens of milliseconds of
// virtual time; "diurnal" periods are scaled-down stand-ins for daily and
// intra-day cycles, not literal days.
//
// Changing a scenario's parameters (or the generator's sampling code)
// changes its byte-exact trace, which the determinism and round-trip tests
// lock; bump the scenario's Seed when a deliberate change is wanted so the
// shift is visible in review.

// All lists the corpus in a stable order (the registry).
func All() []Scenario {
	return []Scenario{
		{
			Name:     "steady-poisson",
			Desc:     "constant-rate Poisson arrivals, static Zipf popularity",
			Stressor: "baseline shape: steady-state AA hit rate and packing",
			Arrival:  Poisson{Rate: 2e6},
			Keys:     ZipfChurn{Distinct: 8192, Skew: 1.1},
			Tuples:   24_000,
			Seed:     601,
		},
		{
			Name:     "flash-crowd",
			Desc:     "MMPP: quiet baseline punctuated by 25× rate flash bursts",
			Stressor: "burst absorption: window backpressure, TX-ring drain, retransmits",
			Arrival: MMPP{Phases: []Phase{
				{Rate: 2e5, Dwell: 12 * time.Millisecond},
				{Rate: 5e6, Dwell: 3 * time.Millisecond},
			}},
			Keys:   ZipfChurn{Distinct: 12_000, Skew: 1.2},
			Tuples: 24_000,
			Seed:   602,
		},
		{
			Name:     "diurnal-two-period",
			Desc:     "two superimposed sinusoidal rate cycles (day + intra-day)",
			Stressor: "pacing: partial-packet flush in troughs, queue growth at peaks",
			Arrival: Diurnal{Base: 1.5e6, Harmonics: []Harmonic{
				{Period: 12 * time.Millisecond, Amp: 0.8},
				{Period: 3 * time.Millisecond, Amp: 0.4, Phase: 1.3},
			}},
			Keys:   ZipfChurn{Distinct: 8192, Skew: 1.1},
			Tuples: 24_000,
			Seed:   603,
		},
		{
			Name:     "hot-rotate",
			Desc:     "Zipf hot set rotates by a large step every 2.5 ms",
			Stressor: "shadow-copy swaps: promoted hot keys invalidated in jumps",
			Arrival:  Poisson{Rate: 2e6},
			Keys: ZipfChurn{
				Distinct: 8192, Skew: 1.3,
				RotatePeriod: 2500 * time.Microsecond, RotateWindow: 1024, RotateStep: 257,
			},
			Tuples: 24_000,
			Seed:   604,
		},
		{
			Name:     "hot-drift",
			Desc:     "popularity drifts continuously via random hot↔tail rank swaps",
			Stressor: "gradual churn: AA residency decays instead of flipping",
			Arrival:  Poisson{Rate: 2e6},
			Keys:     ZipfChurn{Distinct: 8192, Skew: 1.1, DriftRate: 5e4},
			Tuples:   24_000,
			Seed:     605,
		},
		{
			Name:     "antagonist-flip",
			Desc:     "two hot populations swap places every 4 ms (square wave)",
			Stressor: "promotion thrash: each flip devalues the promoted set at once",
			Arrival:  Poisson{Rate: 1.5e6},
			Keys: ZipfChurn{
				Distinct: 8192, Skew: 1.4,
				RotatePeriod: 4 * time.Millisecond, RotateWindow: 512, RotateStep: 256,
			},
			Tuples: 24_000,
			Seed:   606,
		},
		{
			Name:     "cardinality-ramp",
			Desc:     "vocabulary grows 256 → ~12k keys over the stream's life",
			Stressor: "keyspace growth: slot-fill imbalance and first-touch misses",
			Arrival:  Poisson{Rate: 2e6},
			Keys: ZipfChurn{
				Distinct: 256, MaxDistinct: 32_768, GrowthPerSec: 1e6,
			},
			Tuples: 24_000,
			Seed:   607,
		},
		{
			Name:     "cold-uniform-sweep",
			Desc:     "uniform popularity over a 120k-key vocabulary",
			Stressor: "worst-case AA hit rate: almost every tuple is a cold miss",
			Arrival:  Poisson{Rate: 1e6},
			Keys:     ZipfChurn{Distinct: 120_000},
			Tuples:   24_000,
			Seed:     608,
		},
		{
			Name:     "burst-correlated",
			Desc:     "Poisson baseline plus correlated 64-tuple bursts on narrow key groups",
			Stressor: "correlated incast: one key neighborhood flash-loads its slots",
			Arrival:  Poisson{Rate: 8e5},
			Keys:     ZipfChurn{Distinct: 12_000, Skew: 1.2},
			Burst:    &Burst{Rate: 2000, Size: 64, Gap: 200 * time.Nanosecond, Span: 16},
			Tuples:   24_000,
			Seed:     609,
		},
		{
			Name:     "heavy-tail-churn",
			Desc:     "bursty MMPP arrivals, heavy-tailed Zipf(1.5), drifting ranks, long keys",
			Stressor: "combined stress: bursts + churn + long-tail key lengths",
			Arrival: MMPP{Phases: []Phase{
				{Rate: 5e5, Dwell: 8 * time.Millisecond},
				{Rate: 3e6, Dwell: 2 * time.Millisecond},
			}},
			Keys:     ZipfChurn{Distinct: 30_000, Skew: 1.5, DriftRate: 2e4},
			Tuples:   24_000,
			Seed:     610,
			LongTail: 2,
			ValRange: 1000,
		},
		{
			Name:     "trickle",
			Desc:     "sparse low-rate arrivals with long idle gaps",
			Stressor: "pacing floor: lull flushes dominate, packets go out mostly blank",
			Arrival:  Poisson{Rate: 5e4},
			Keys:     ZipfChurn{Distinct: 4096, Skew: 1.1},
			Tuples:   4_000,
			Seed:     611,
		},
		{
			Name:     "mixed-diurnal-growth",
			Desc:     "diurnal rate cycles over a growing, drifting vocabulary",
			Stressor: "everything at once: the soak shape for long-running scale PRs",
			Arrival: Diurnal{Base: 1.2e6, Harmonics: []Harmonic{
				{Period: 14 * time.Millisecond, Amp: 0.7},
				{Period: 3 * time.Millisecond, Amp: 0.3, Phase: 0.7},
			}},
			Keys: ZipfChurn{
				Distinct: 4096, MaxDistinct: 32_768, GrowthPerSec: 1.5e6,
				Skew: 1.15, DriftRate: 1e4,
			},
			Burst:    &Burst{Rate: 800, Size: 48, Gap: 250 * time.Nanosecond, Span: 24},
			Tuples:   24_000,
			Seed:     612,
			ValRange: 100,
		},
	}
}

// Names lists the corpus scenario names in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// ByName finds a corpus scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, names)
}
