package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Arrival describes a temporal arrival process. Clock instantiates a
// deterministic generator bound to one seeded RNG stream; the same RNG
// state always yields the same arrival sequence.
type Arrival interface {
	// Clock returns the process's gap generator: called at stream time now,
	// it returns the gap to the next arrival (strictly relative; the caller
	// accumulates).
	Clock(rng *rand.Rand) Clock
	// String names the process and its parameters for trace metadata.
	String() string
}

// Clock yields inter-arrival gaps for successive tuples.
type Clock func(now time.Duration) time.Duration

// expDur draws an exponential gap for a process running at rate events/s.
func expDur(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		panic(fmt.Sprintf("scenario: non-positive rate %v", rate))
	}
	d := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond // arrivals stay strictly ordered at ns resolution
	}
	return d
}

// Poisson is a homogeneous Poisson process: independent exponential gaps at
// a constant rate (tuples per second of stream time).
type Poisson struct {
	Rate float64
}

func (p Poisson) Clock(rng *rand.Rand) Clock {
	return func(time.Duration) time.Duration { return expDur(rng, p.Rate) }
}

func (p Poisson) String() string { return fmt.Sprintf("poisson(%.3g/s)", p.Rate) }

// Phase is one regime of an MMPP: a Poisson rate held for an exponentially
// distributed dwell time.
type Phase struct {
	Rate  float64       // arrivals per second while in this phase
	Dwell time.Duration // mean dwell before moving to the next phase
}

// MMPP is a Markov-modulated Poisson process cycling through its phases in
// order (the classic 2-phase instance alternates a quiet baseline with a
// high-rate burst regime). Gaps inside a phase are exponential at the
// phase's rate; phase changes arrive after exponential dwells.
type MMPP struct {
	Phases []Phase
}

func (m MMPP) Clock(rng *rand.Rand) Clock {
	if len(m.Phases) == 0 {
		panic("scenario: MMPP needs at least one phase")
	}
	idx := 0
	var phaseEnd time.Duration
	started := false
	return func(now time.Duration) time.Duration {
		if !started {
			started = true
			phaseEnd = now + expDur(rng, 1/m.Phases[idx].Dwell.Seconds())
		}
		for now >= phaseEnd {
			idx = (idx + 1) % len(m.Phases)
			phaseEnd += expDur(rng, 1/m.Phases[idx].Dwell.Seconds())
		}
		return expDur(rng, m.Phases[idx].Rate)
	}
}

func (m MMPP) String() string {
	parts := make([]string, len(m.Phases))
	for i, p := range m.Phases {
		parts[i] = fmt.Sprintf("%.3g/s×%v", p.Rate, p.Dwell)
	}
	return "mmpp(" + strings.Join(parts, ",") + ")"
}

// Harmonic is one periodic component of a diurnal rate profile.
type Harmonic struct {
	Period time.Duration // cycle length
	Amp    float64       // relative amplitude in [0, 1]
	Phase  float64       // phase offset in radians
}

// Diurnal is a non-homogeneous Poisson process whose rate is a multi-period
// sinusoidal profile: rate(t) = Base · (1 + Σ Ampᵢ·sin(2πt/Periodᵢ + φᵢ)),
// clamped at a small positive floor. Scaled-down stand-in for diurnal plus
// intra-day load cycles; sampled exactly by Lewis thinning against the
// profile's peak rate.
type Diurnal struct {
	Base      float64
	Harmonics []Harmonic
}

// rate evaluates the instantaneous arrival rate at stream time t.
func (d Diurnal) rate(t time.Duration) float64 {
	r := 1.0
	for _, h := range d.Harmonics {
		r += h.Amp * math.Sin(2*math.Pi*t.Seconds()/h.Period.Seconds()+h.Phase)
	}
	if r < 0.01 {
		r = 0.01 // the profile never fully switches off
	}
	return d.Base * r
}

func (d Diurnal) Clock(rng *rand.Rand) Clock {
	peak := 1.0
	for _, h := range d.Harmonics {
		peak += math.Abs(h.Amp)
	}
	maxRate := d.Base * peak
	return func(now time.Duration) time.Duration {
		// Lewis–Shedler thinning: candidate arrivals at the peak rate,
		// accepted with probability rate(t)/maxRate.
		gap := time.Duration(0)
		for {
			gap += expDur(rng, maxRate)
			if rng.Float64()*maxRate <= d.rate(now+gap) {
				return gap
			}
		}
	}
}

func (d Diurnal) String() string {
	parts := make([]string, len(d.Harmonics))
	for i, h := range d.Harmonics {
		parts[i] = fmt.Sprintf("%v×%.2f", h.Period, h.Amp)
	}
	return fmt.Sprintf("diurnal(%.3g/s;%s)", d.Base, strings.Join(parts, ","))
}
