// Package repro is a from-scratch Go reproduction of "A Generic Service to
// Provide In-Network Aggregation for Key-Value Streams" (He, Wu, Le, Liu,
// Lao — ASPLOS 2023).
//
// The public API lives in repro/ask; the benchmark harness in this package
// (bench_test.go) regenerates every table and figure of the paper's
// evaluation. See README.md for the layout, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package repro
