module repro

go 1.22

// No external requirements by design: the build must stay hermetic (offline
// module cache). In particular cmd/askcheck's analyzers run on a small
// stdlib-only go/analysis-shaped framework (internal/analysis/framework)
// instead of pinning golang.org/x/tools; if the toolchain image ever bakes
// in x/tools, the analyzers port by swapping imports — the Analyzer/Pass
// API shapes match.
