// Command askcheck is the repository's static-analysis driver: a
// multichecker over the internal/analysis suite, in the mold of a
// golang.org/x/tools/go/analysis/multichecker binary but built on the
// self-contained internal/analysis/framework (no external dependencies,
// so it runs in the hermetic CI container).
//
// Usage:
//
//	askcheck [-run name,name] [-json] [-jobs n] [packages]
//
// Packages follow go-tool patterns: "./..." (the default) walks every
// package under the current module; a plain path names one directory. All
// matched packages are loaded before any analyzer runs, giving the
// interprocedural analyzers the whole load universe; analysis itself runs
// on -jobs workers (default GOMAXPROCS) with deterministic output order.
//
// Analyzers:
//
//	pisaaccess      PISA single-RMW-per-pass and stage-order violations
//	simdeterminism  wall-clock, global rand, order-leaking map iteration
//	clockwait       mutexes held across sim-clock waits / channel ops
//	telemetrynames  metric-name shape + DESIGN.md inventory
//	poolrelease     packet-pool acquisitions never released, through calls
//	shardsafety     shard-root state crossing the partition outside mailboxes
//	errtaxonomy     typed errors matched without errors.Is/As; undocumented
//	                error-returning APIs in ask/
//
// With -json, diagnostics stream as NDJSON records
// {file,line,col,analyzer,message} for CI annotation; the human summary
// line is omitted. A diagnostic can be suppressed with
// //askcheck:allow(<analyzer>[,<analyzer>...]) on the offending line or
// the line above. Exit status: 0 clean, 1 diagnostics reported, 2
// operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis/clockwait"
	"repro/internal/analysis/errtaxonomy"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/pisaaccess"
	"repro/internal/analysis/poolrelease"
	"repro/internal/analysis/shardsafety"
	"repro/internal/analysis/simdeterminism"
	"repro/internal/analysis/telemetrynames"
)

var all = []*framework.Analyzer{
	pisaaccess.Analyzer,
	simdeterminism.Analyzer,
	clockwait.Analyzer,
	telemetrynames.Analyzer,
	poolrelease.Analyzer,
	shardsafety.Analyzer,
	errtaxonomy.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as NDJSON records")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "number of concurrent analysis workers")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: askcheck [-run name,name] [-json] [-jobs n] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	res, err := analyze(cwd, patterns, analyzers, *jobs)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := res.writeJSON(os.Stdout, cwd); err != nil {
			fatal(err)
		}
	} else {
		if err := res.writeText(os.Stdout, cwd); err != nil {
			fatal(err)
		}
	}
	if n := len(res.diags); n > 0 {
		if !*jsonOut {
			fmt.Printf("askcheck: %d problem(s) across %d package(s)\n", n, res.pkgs)
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("askcheck: %d package(s) clean (%s)\n", res.pkgs, analyzerNames(analyzers))
	}
}

func selectAnalyzers(runList string) ([]*framework.Analyzer, error) {
	if runList == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*framework.Analyzer
	for _, n := range strings.Split(runList, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames(all))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

func analyzerNames(as []*framework.Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "askcheck:", err)
	os.Exit(2)
}
