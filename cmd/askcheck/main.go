// Command askcheck is the repository's static-analysis driver: a
// multichecker over the internal/analysis suite, in the mold of a
// golang.org/x/tools/go/analysis/multichecker binary but built on the
// self-contained internal/analysis/framework (no external dependencies,
// so it runs in the hermetic CI container).
//
// Usage:
//
//	askcheck [-run name,name] [packages]
//
// Packages follow go-tool patterns: "./..." (the default) walks every
// package under the current module; a plain path names one directory.
//
// Analyzers:
//
//	pisaaccess      PISA single-RMW-per-pass and stage-order violations
//	simdeterminism  wall-clock, global rand, order-leaking map iteration
//	clockwait       mutexes held across sim-clock waits / channel ops
//	telemetrynames  metric-name shape + DESIGN.md inventory
//	poolrelease     packet-pool acquisitions that are never released
//
// A diagnostic can be suppressed with //askcheck:allow(<analyzer>) on the
// offending line or the line above. Exit status: 0 clean, 1 diagnostics
// reported, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/clockwait"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/pisaaccess"
	"repro/internal/analysis/poolrelease"
	"repro/internal/analysis/simdeterminism"
	"repro/internal/analysis/telemetrynames"
)

var all = []*framework.Analyzer{
	pisaaccess.Analyzer,
	simdeterminism.Analyzer,
	clockwait.Analyzer,
	telemetrynames.Analyzer,
	poolrelease.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: askcheck [-run name,name] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	dirs, err := framework.ExpandPatterns(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	loader, err := framework.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}

	bad := 0
	pkgs := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		pkgs++
		diags, err := framework.RunAnalyzers(pkg, analyzers...)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("askcheck: %d problem(s) across %d package(s)\n", bad, pkgs)
		os.Exit(1)
	}
	fmt.Printf("askcheck: %d package(s) clean (%s)\n", pkgs, analyzerNames(analyzers))
}

func selectAnalyzers(runList string) ([]*framework.Analyzer, error) {
	if runList == "" {
		return all, nil
	}
	byName := make(map[string]*framework.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*framework.Analyzer
	for _, n := range strings.Split(runList, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames(all))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

func analyzerNames(as []*framework.Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "askcheck:", err)
	os.Exit(2)
}
