package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

var fixturePatterns = []string{"./testdata/src/hostd", "./testdata/src/toy"}

func runFixture(t *testing.T, jobs int) (*result, string, string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyze(cwd, fixturePatterns, all, jobs)
	if err != nil {
		t.Fatalf("analyze(jobs=%d): %v", jobs, err)
	}
	var text, ndjson bytes.Buffer
	if err := res.writeText(&text, cwd); err != nil {
		t.Fatal(err)
	}
	if err := res.writeJSON(&ndjson, cwd); err != nil {
		t.Fatal(err)
	}
	return res, text.String(), ndjson.String()
}

// TestAnalyzeDeterministicUnderConcurrency locks the satellite guarantee:
// the parallel worker pool must produce byte-identical output to a serial
// run, in both text and JSON modes.
func TestAnalyzeDeterministicUnderConcurrency(t *testing.T) {
	_, serialText, serialJSON := runFixture(t, 1)
	for _, jobs := range []int{2, 8} {
		_, text, ndjson := runFixture(t, jobs)
		if text != serialText {
			t.Errorf("jobs=%d text output differs from serial:\n--- serial ---\n%s--- jobs=%d ---\n%s",
				jobs, serialText, jobs, text)
		}
		if ndjson != serialJSON {
			t.Errorf("jobs=%d JSON output differs from serial:\n--- serial ---\n%s--- jobs=%d ---\n%s",
				jobs, serialJSON, jobs, ndjson)
		}
	}
}

// TestAnalyzeGolden pins the exact driver output over the fixture tree —
// file, position, analyzer, and message for every diagnostic, in order.
// Regenerate with: go test ./cmd/askcheck -run TestAnalyzeGolden -update
func TestAnalyzeGolden(t *testing.T) {
	_, text, ndjson := runFixture(t, 4)
	checkGolden(t, filepath.Join("testdata", "golden.txt"), text)
	checkGolden(t, filepath.Join("testdata", "golden.json"), ndjson)
}

var update = os.Getenv("ASKCHECK_UPDATE_GOLDEN") != ""

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (set ASKCHECK_UPDATE_GOLDEN=1 to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}
