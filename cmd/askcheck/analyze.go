package main

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis/framework"
)

// result is one full driver run: the loaded package count and the
// surviving diagnostics in deterministic (directory, position) order.
type result struct {
	fset  *token.FileSet
	pkgs  int
	diags []framework.Diagnostic
}

// analyze expands patterns, loads every matched package, and runs the
// analyzers over the packages on `jobs` workers.
//
// Loading is strictly serial — the recursive type-checker shares loader
// state — and completes before any analyzer runs, so whole-universe
// analyzers (shardsafety's annotation scan, poolrelease's cross-package
// facts) see the full load universe no matter which package is analyzed
// first. Analysis then fans out: packages are handed to workers in index
// order and results are joined back by index, so the diagnostic order is
// identical for any jobs value (each package's diagnostics are already
// position-sorted by RunAnalyzers).
func analyze(cwd string, patterns []string, analyzers []*framework.Analyzer, jobs int) (*result, error) {
	dirs, err := framework.ExpandPatterns(cwd, patterns)
	if err != nil {
		return nil, err
	}
	loader, err := framework.NewLoader(cwd)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*framework.Package, len(dirs))
	for i, dir := range dirs {
		if pkgs[i], err = loader.LoadDir(dir); err != nil {
			return nil, err
		}
	}

	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(pkgs) {
		jobs = len(pkgs)
	}
	perPkg := make([][]framework.Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pkgs) {
					return
				}
				perPkg[i], errs[i] = framework.RunAnalyzers(pkgs[i], analyzers...)
			}
		}()
	}
	wg.Wait()

	res := &result{fset: loader.Fset, pkgs: len(pkgs)}
	for i := range perPkg {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.diags = append(res.diags, perPkg[i]...)
	}
	return res, nil
}

// writeText renders diagnostics in the classic file:line:col form, with
// paths relative to base when possible.
func (r *result) writeText(w io.Writer, base string) error {
	for _, d := range r.diags {
		pos := r.fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON renders diagnostics as NDJSON records for CI annotation.
func (r *result) writeJSON(w io.Writer, base string) error {
	return framework.WriteJSON(w, r.fset, base, r.diags)
}
