// Package toy seeds shardsafety diagnostics for the driver's determinism
// golden test.
package toy

// Cell is a toy shard root.
//
//askcheck:shard
type Cell struct{ N int }

var cells []*Cell

// Handle is a shard handler reaching across the partition.
func (c *Cell) Handle() {
	cells[0].N++
}
