// Package fixture seeds known diagnostics for the driver's determinism
// golden test (the directory name "hostd" puts it on the poolrelease fast
// path).
package fixture

import (
	"io"

	"repro/internal/wire"
)

// Leak drops a pooled packet on the floor.
func Leak() {
	pkt := wire.NewPacket()
	pkt.Seq = 1
}

// AtEOF compares a sentinel by identity.
func AtEOF(err error) bool { return err == io.EOF }
