// Command askbench regenerates the paper's evaluation tables and figures
// (§5) on the simulated substrate.
//
// Usage:
//
//	askbench -list
//	askbench -run fig9
//	askbench -run all -quick
//
// Each experiment prints the same rows/series the paper reports; -quick
// uses the test-scale presets (seconds instead of minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment to run (or 'all')")
		quick = flag.Bool("quick", false, "use test-scale presets")
		list  = flag.Bool("list", false, "list available experiments")
		telem = flag.Bool("telemetry", false, "instrument experiment clusters and print a metric report per experiment")
	)
	flag.Parse()
	if *telem {
		experiments.SetDefaultTelemetry(telemetry.Config{Enabled: true})
	}

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-16s %s\n", r.Name, r.Desc)
		}
		if *run == "" {
			fmt.Println("\nRun one with: askbench -run <name> [-quick]")
		}
		return
	}

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		f := r.Full
		if *quick {
			f = r.Quick
		}
		start := time.Now()
		tables, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		if *telem {
			if set := experiments.LastTelemetry(); set != nil {
				fmt.Println(telemetry.Report(set.Registry).String())
			}
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}
