// Command askbench regenerates the paper's evaluation tables and figures
// (§5) on the simulated substrate.
//
// Usage:
//
//	askbench -list
//	askbench -run fig9
//	askbench -run scenarios -quick      # whole scenario corpus
//	askbench -scenario flash-crowd      # one corpus scenario
//	askbench -run all -quick
//	askbench -run all -quick -parallel 8
//	askbench -run all -json > results.json
//
// Each experiment prints the same rows/series the paper reports; -quick
// uses the test-scale presets (seconds instead of minutes).
//
// -parallel N runs independent experiments on a worker pool. Every
// simulation is single-goroutine deterministic and shares no state with its
// siblings, so the output is byte-identical to a serial run (outcomes are
// printed in registry order regardless of completion order); only the wall
// clock shrinks. -json emits the outcomes as deterministic JSON — the
// format the serial-vs-parallel golden test locks down — instead of the
// human-readable tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment to run (or 'all')")
		quick    = flag.Bool("quick", false, "use test-scale presets")
		list     = flag.Bool("list", false, "list available experiments")
		telem    = flag.Bool("telemetry", false, "instrument experiment clusters and print a metric report per experiment")
		parallel = flag.Int("parallel", 1, "run up to N experiments concurrently (results stay in order and byte-identical)")
		jsonOut  = flag.Bool("json", false, "emit outcomes as deterministic JSON instead of tables")
		scen     = flag.String("scenario", "", "run the scenario-corpus sweep for one named scenario (see askgen -list-scenarios)")
	)
	flag.Parse()
	if *telem {
		experiments.SetDefaultTelemetry(telemetry.Config{Enabled: true})
	}

	if *list || (*run == "" && *scen == "") {
		fmt.Println("Available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-16s %s\n", r.Name, r.Desc)
		}
		if *run == "" {
			fmt.Println("\nRun one with: askbench -run <name> [-quick] [-parallel N] [-json]")
		}
		return
	}

	var runners []experiments.Runner
	switch {
	case *scen != "":
		r, err := experiments.ScenarioRunner(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	case *run == "all":
		runners = experiments.All()
	default:
		r, err := experiments.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	// Wall-clock measurement stays in this package: the model packages are
	// forbidden (by the simdeterminism analyzer) from reading real time.
	// The scaling experiment's speedup columns borrow this clock through
	// the SetWallClock seam. Note wall readings are only meaningful when
	// the scaling experiment runs alone (-parallel 1); concurrent sibling
	// experiments steal its CPU.
	start := time.Now()
	experiments.SetWallClock(func() time.Duration { return time.Since(start) })
	outcomes := experiments.RunParallel(runners, *quick, *parallel)
	experiments.SetWallClock(nil)

	failed := false
	if *jsonOut {
		b, err := experiments.OutcomesJSON(outcomes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
		for _, o := range outcomes {
			failed = failed || o.Err != ""
		}
	} else {
		for _, o := range outcomes {
			if o.Err != "" {
				fmt.Fprintf(os.Stderr, "%s: %s\n", o.Name, o.Err)
				failed = true
				continue
			}
			for _, t := range o.Tables {
				fmt.Println(t.String())
			}
		}
		if *telem {
			if set := experiments.LastTelemetry(); set != nil {
				fmt.Println(telemetry.Report(set.Registry).String())
			}
		}
		fmt.Printf("(%d experiment(s) completed in %v wall time, parallel=%d)\n",
			len(outcomes), time.Since(start).Round(time.Millisecond), *parallel)
	}
	if failed {
		os.Exit(1)
	}
}
