// Command benchjson converts `go test -bench` output into the committed
// BENCH_*.json perf-trajectory artifacts.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig3$|Fig7$|MultiRack$' -benchmem . > after.txt
//	go run ./cmd/benchjson -o BENCH_5.json seed=seed.txt after=after.txt
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_5.json current=-
//
// Each positional argument is label=path ("-" reads stdin). The output
// records, per benchmark and phase: iterations, wall ns/op, B/op,
// allocs/op, and any custom b.ReportMetric units (e.g. the experiment
// harness's sim-AKV/s simulated throughput). When both a "seed" and an
// "after" phase are present, a delta section reports the percentage change
// of ns/op and allocs/op per benchmark — the committed form of the
// benchstat before/after table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result. Repeated -count=N runs of the same
// benchmark are merged into a single entry holding the arithmetic mean of
// every measured value, with Runs recording how many lines contributed.
type Bench struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Delta is the seed→after change for one benchmark.
type Delta struct {
	Name         string  `json:"name"`
	NsPerOpPct   float64 `json:"ns_per_op_pct"`
	AllocsOpPct  float64 `json:"allocs_per_op_pct"`
	SeedNsPerOp  float64 `json:"seed_ns_per_op"`
	AfterNsPerOp float64 `json:"after_ns_per_op"`
}

// Output is the whole artifact.
type Output struct {
	Note   string             `json:"note,omitempty"`
	Phases map[string][]Bench `json:"phases"`
	Deltas []Delta            `json:"deltas,omitempty"`
}

func main() {
	var (
		out  = flag.String("o", "", "output file (default stdout)")
		note = flag.String("note", "", "free-form provenance note embedded in the artifact")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [-note text] label=path ...")
		os.Exit(2)
	}

	res := Output{Note: *note, Phases: map[string][]Bench{}}
	for _, arg := range flag.Args() {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: argument %q is not label=path\n", arg)
			os.Exit(2)
		}
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		benches, err := parse(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(1)
		}
		res.Phases[label] = aggregate(benches)
	}
	res.Deltas = deltas(res.Phases["seed"], res.Phases["after"])

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines ("BenchmarkX-8  10  123 ns/op ...")
// from go test output, ignoring everything else (printed tables, PASS).
//
// When a benchmark writes to stdout, go test prints "BenchmarkX" once and
// the measurements of later -count runs appear on bare lines ("  1  123
// ns/op ..."); those orphan lines are attributed to the most recent name.
func parse(r io.Reader) ([]Bench, error) {
	var out []Bench
	lastName := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		var name string
		var vals []string
		switch {
		case len(fields) >= 4 && strings.HasPrefix(fields[0], "Benchmark"):
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				continue // e.g. "Benchmarking..." prose
			}
			name = strings.TrimPrefix(fields[0], "Benchmark")
			if i := strings.LastIndexByte(name, '-'); i > 0 {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
			lastName = name
			vals = fields[1:]
		case len(fields) >= 3 && lastName != "" && strings.Contains(sc.Text(), "ns/op"):
			if _, err := strconv.ParseInt(fields[0], 10, 64); err != nil {
				continue
			}
			name = lastName
			vals = fields
		default:
			continue
		}
		iters, _ := strconv.ParseInt(vals[0], 10, 64)
		b := Bench{Name: name, Iterations: iters}
		// Remaining fields come in "value unit" pairs.
		for i := 1; i+1 < len(vals); i += 2 {
			v, err := strconv.ParseFloat(vals[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", vals[i], sc.Text())
			}
			switch unit := vals[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// aggregate merges repeated runs of the same benchmark (go test -count=N)
// into one entry per name, averaging every per-op value and custom metric
// and summing iterations. First-seen order is preserved.
func aggregate(in []Bench) []Bench {
	type acc struct {
		b    Bench
		runs float64
	}
	var order []string
	byName := map[string]*acc{}
	for _, b := range in {
		a, ok := byName[b.Name]
		if !ok {
			a = &acc{b: Bench{Name: b.Name}}
			byName[b.Name] = a
			order = append(order, b.Name)
		}
		a.runs++
		a.b.Iterations += b.Iterations
		a.b.NsPerOp += b.NsPerOp
		a.b.BPerOp += b.BPerOp
		a.b.AllocsOp += b.AllocsOp
		for k, v := range b.Metrics {
			if a.b.Metrics == nil {
				a.b.Metrics = map[string]float64{}
			}
			a.b.Metrics[k] += v
		}
	}
	out := make([]Bench, 0, len(order))
	for _, name := range order {
		a := byName[name]
		a.b.Runs = int(a.runs)
		a.b.NsPerOp = round2(a.b.NsPerOp / a.runs)
		a.b.BPerOp = round2(a.b.BPerOp / a.runs)
		a.b.AllocsOp = round2(a.b.AllocsOp / a.runs)
		for k := range a.b.Metrics {
			a.b.Metrics[k] = round2(a.b.Metrics[k] / a.runs)
		}
		out = append(out, a.b)
	}
	return out
}

// deltas computes per-benchmark percentage change between a seed and an
// after phase (nil if either is missing). Output is sorted by name so the
// artifact is deterministic.
func deltas(seed, after []Bench) []Delta {
	if seed == nil || after == nil {
		return nil
	}
	idx := make(map[string]Bench, len(seed))
	for _, b := range seed {
		idx[b.Name] = b
	}
	var out []Delta
	for _, a := range after {
		s, ok := idx[a.Name]
		if !ok || s.NsPerOp == 0 {
			continue
		}
		d := Delta{
			Name:         a.Name,
			NsPerOpPct:   round2(100 * (a.NsPerOp - s.NsPerOp) / s.NsPerOp),
			SeedNsPerOp:  s.NsPerOp,
			AfterNsPerOp: a.NsPerOp,
		}
		if s.AllocsOp > 0 {
			d.AllocsOpPct = round2(100 * (a.AllocsOp - s.AllocsOp) / s.AllocsOp)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func round2(v float64) float64 { return float64(int64(v*100+0.5*sign(v))) / 100 }

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
