package main

import (
	"strings"
	"testing"
)

// sample mimics go test -bench -count=2 output where the benchmark body
// printed tables to stdout: the first run's line carries the name, the
// second run's measurements appear on a bare continuation line.
const sample = `goos: linux
BenchmarkFig3      	       1	9000000000 ns/op	 830902597 sim-AKV/s	3000000000 B/op	50000000 allocs/op
BenchmarkFig3      	== Fig. 3: table output ==
       1	7000000000 ns/op	 830902597 sim-AKV/s	1000000000 B/op	10000000 allocs/op
BenchmarkCodecMarshal-8   	 3354966	       357.1 ns/op	     320 B/op	       1 allocs/op
PASS
`

func TestParseAttributesOrphanLines(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d lines, want 3: %+v", len(benches), benches)
	}
	if benches[1].Name != "Fig3" || benches[1].NsPerOp != 7000000000 {
		t.Fatalf("orphan line misattributed: %+v", benches[1])
	}
	if benches[2].Name != "CodecMarshal" || benches[2].AllocsOp != 1 {
		t.Fatalf("suffix strip or alloc parse broken: %+v", benches[2])
	}
}

func TestAggregateMeansRepeatedRuns(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	agg := aggregate(benches)
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d entries, want 2: %+v", len(agg), agg)
	}
	fig3 := agg[0]
	if fig3.Name != "Fig3" || fig3.Runs != 2 {
		t.Fatalf("bad aggregation order/runs: %+v", fig3)
	}
	if fig3.NsPerOp != 8000000000 {
		t.Fatalf("ns/op mean = %v, want 8e9", fig3.NsPerOp)
	}
	if fig3.AllocsOp != 30000000 {
		t.Fatalf("allocs/op mean = %v, want 3e7", fig3.AllocsOp)
	}
	if fig3.Metrics["sim-AKV/s"] != 830902597 {
		t.Fatalf("metric mean = %v", fig3.Metrics["sim-AKV/s"])
	}
	if agg[1].Runs != 1 || agg[1].NsPerOp != 357.1 {
		t.Fatalf("single-run entry mangled: %+v", agg[1])
	}
}

func TestDeltas(t *testing.T) {
	seed := []Bench{{Name: "Fig3", NsPerOp: 10, AllocsOp: 100}}
	after := []Bench{{Name: "Fig3", NsPerOp: 5, AllocsOp: 25}}
	d := deltas(seed, after)
	if len(d) != 1 || d[0].NsPerOpPct != -50 || d[0].AllocsOpPct != -75 {
		t.Fatalf("deltas = %+v", d)
	}
	if deltas(nil, after) != nil {
		t.Fatal("deltas without seed should be nil")
	}
}
