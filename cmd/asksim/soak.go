package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/netsim"
)

// soakFlags carries the -soak.* flag values into the topology dispatch.
type soakFlags struct {
	Topology       string
	Runs           int
	Seed           int64
	Events         int
	Senders        int
	Tuples         int64
	Corrupt        float64
	BreakChecksums bool
	Spines, Leaves int
	Shards         int
}

// runSoak dispatches the soak harness by -topology: the rack soak
// (chaos.Soak) or the fat-tree fabric soak (chaos.FabricSoak). Flags that
// only exist on the other topology are rejected up front — a silently
// ignored flag would make a reproducer line lie about what ran.
func runSoak(sf soakFlags) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "asksim: "+format+"\n", args...)
		os.Exit(1)
	}

	ok := true
	switch sf.Topology {
	case "rack":
		if set["soak.spines"] || set["soak.leaves"] {
			fail("-soak.spines/-soak.leaves need -topology fattree (the rack has a single switch)")
		}
		if set["soak.shards"] {
			fail("-soak.shards needs -topology fattree (a single rack has no partition boundary to cut)")
		}
		for i := 0; i < sf.Runs; i++ {
			rep, err := chaos.Soak(chaos.SoakConfig{
				Seed:                  sf.Seed + int64(i),
				Events:                sf.Events,
				Senders:               sf.Senders,
				Tuples:                sf.Tuples,
				Base:                  netsim.Fault{CorruptProb: sf.Corrupt},
				DisableChecksumVerify: sf.BreakChecksums,
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Print(rep)
			ok = ok && rep.Passed()
		}
	case "fattree":
		if set["soak.senders"] {
			fail("-soak.senders is rack-only; the fat-tree soak derives its senders from -soak.leaves (one per non-receiver leaf, per tenant)")
		}
		if sf.BreakChecksums {
			fail("-soak.break-checksums is rack-only (the checksum fault hook demo runs on the rack soak)")
		}
		for i := 0; i < sf.Runs; i++ {
			rep, err := chaos.FabricSoak(chaos.FabricSoakConfig{
				Seed:   sf.Seed + int64(i),
				Events: sf.Events,
				Spines: sf.Spines,
				Leaves: sf.Leaves,
				Tuples: sf.Tuples,
				Base:   netsim.Fault{CorruptProb: sf.Corrupt},
				Shards: sf.Shards,
			})
			if err != nil {
				fail("%v", err)
			}
			fmt.Print(rep)
			ok = ok && rep.Passed()
		}
	default:
		fail("unknown -topology %q (rack or fattree)", sf.Topology)
	}
	if !ok {
		os.Exit(1)
	}
}
