package main

import (
	"fmt"
	"os"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/switchd"
	"repro/internal/telemetry"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// fatTreeFlags is the CLI parameter set of the fat-tree topology mode.
type fatTreeFlags struct {
	Spines, Leaves, HostsPerLeaf int
	Tenants                      int
	Tuples                       int64
	Distinct                     int
	Skew                         float64
	Rows                         int
	Seed                         int64
	Verify                       bool
	Telemetry                    bool
	Shards                       int
}

// runFatTree drives the spine/leaf deployment: with -tenants 0 a single
// cross-leaf task, otherwise one concurrent task per tenant under weighted
// AA allocation (equal weights from the CLI).
func runFatTree(ff fatTreeFlags) {
	if ff.HostsPerLeaf < 2 {
		fmt.Fprintln(os.Stderr, "asksim: fattree needs -hosts >= 2 (hosts per leaf; slot 0 of leaf 0 receives)")
		os.Exit(1)
	}
	if ff.Tenants > ff.HostsPerLeaf {
		fmt.Fprintln(os.Stderr, "asksim: fattree needs -tenants <= -hosts (one receiver slot per tenant)")
		os.Exit(1)
	}
	opts := ask.FatTreeOptions{
		Spines: ff.Spines, Leaves: ff.Leaves, HostsPerLeaf: ff.HostsPerLeaf,
		Seed:      ff.Seed,
		Telemetry: telemetry.Config{Enabled: ff.Telemetry},
		Shards:    ff.Shards,
	}
	for i := 0; i < ff.Tenants; i++ {
		opts.Tenants = append(opts.Tenants, tenancy.TenantSpec{ID: core.TenantID(i + 1), Weight: 1})
	}
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("fat-tree: %d spines × %d leaves × %d hosts/leaf", ff.Spines, ff.Leaves, ff.HostsPerLeaf)
	if ff.Tenants > 0 {
		fmt.Printf(", %d tenants (equal weights)", ff.Tenants)
	}
	fmt.Println()

	// One plan per task: with tenants, tenant i's receiver sits in slot i of
	// leaf 0 and a sender in slot i of every other leaf; untenanted, a
	// single task uses slot 0 (plus a local sender in slot 1 of leaf 0).
	type plan struct {
		label string
		spec  core.TaskSpec
		str   map[core.HostID]core.Stream
		want  core.Result
	}
	stream := func(slot int, seedOff int64) (core.Stream, core.Result) {
		w := workload.Spec{
			Name: "cli", Distinct: ff.Distinct, Tuples: ff.Tuples,
			Skew: ff.Skew, Seed: ff.Seed + seedOff,
			KeyLens: workload.NaturalLanguage(0),
		}
		return w.Stream(), w.Reference(core.OpSum)
	}
	var plans []plan
	ntasks := ff.Tenants
	if ntasks == 0 {
		ntasks = 1
	}
	for i := 0; i < ntasks; i++ {
		p := plan{
			label: "task",
			spec:  core.TaskSpec{ID: core.TaskID(i + 1), Receiver: opts.HostAt(0, i), Op: core.OpSum, Rows: ff.Rows},
			str:   make(map[core.HostID]core.Stream),
			want:  make(core.Result),
		}
		if ff.Tenants > 0 {
			p.label = fmt.Sprintf("tenant %d", i+1)
			p.spec.ID = core.MakeTaskID(core.TenantID(i+1), uint32(i+1))
		}
		for l := 0; l < ff.Leaves; l++ {
			slot := i
			if l == 0 {
				if ff.Leaves > 1 {
					continue // receiver's leaf contributes no sender on multi-leaf runs
				}
				slot = i + 1 // single-leaf degenerate case: local sender
			}
			h := opts.HostAt(l, slot)
			p.spec.Senders = append(p.spec.Senders, h)
			s, ref := stream(slot, int64(i*ff.Leaves+l))
			p.str[h] = s
			p.want.Merge(ref, core.OpSum)
		}
		plans = append(plans, p)
	}

	pending := make([]*ask.FatTreePendingTask, len(plans))
	for i, p := range plans {
		pt, err := fc.StartTask(p.spec, p.str)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asksim: %s: %v\n", p.label, err)
			os.Exit(1)
		}
		pending[i] = pt
	}
	fc.Sim.Run(0)

	ok := true
	for i, p := range plans {
		res, err := pending[i].Get()
		if err != nil {
			fmt.Fprintf(os.Stderr, "asksim: %s: %v\n", p.label, err)
			os.Exit(1)
		}
		el := time.Duration(res.Elapsed)
		verdict := ""
		if ff.Verify {
			if res.Result.Equal(p.want) {
				verdict = "  exact ✓"
			} else {
				verdict = "  MISMATCH ✗"
				ok = false
			}
		}
		fmt.Printf("%-9s %8d keys in %12v, fabric absorbed %5.2f%% of %d tuples%s\n",
			p.label+":", len(res.Result), el,
			100*res.Switch.AggregatedTupleRatio(), res.Switch.TuplesIn, verdict)
	}

	// Per-tuple counters are per-task (switchd.TaskStats), so sum the plan's
	// tasks at each tier to show where the fabric absorbed the stream.
	absorbed := func(sw interface {
		TaskStatsOf(core.TaskID) *switchd.TaskStats
	}) int64 {
		var n int64
		for _, p := range plans {
			n += sw.TaskStatsOf(p.spec.ID).TuplesAggregated
		}
		return n
	}
	fmt.Printf("\nfabric:\n")
	for l, sw := range fc.Leaves {
		fmt.Printf("  leaf %d:  %8d tuples absorbed\n", l, absorbed(sw))
	}
	for sp, sw := range fc.Spines {
		fmt.Printf("  spine %d: %8d tuples absorbed (re-aggregated residue)\n", sp, absorbed(sw))
	}
	if fc.Tenancy != nil {
		fmt.Printf("\ntenancy (AA rows of %d):\n", fc.Config().AARows)
		for _, u := range fc.Tenancy.Snapshot() {
			fmt.Printf("  tenant %d: quota %5d rows, in use %d, borrowed %d\n",
				u.Tenant, u.Quota, u.InUse, u.Borrowed)
		}
	}
	if fc.Tel != nil {
		fmt.Println()
		fmt.Println(telemetry.Report(fc.Tel.Registry).String())
	}
	if !ok {
		os.Exit(1)
	}
}
