// Command asksim runs one ASK aggregation task on a simulated cluster built
// from flags and dumps the full metric set — a scriptable way to poke the
// system.
//
// Example:
//
//	asksim -hosts 4 -senders 3 -tuples 1000000 -distinct 8192 \
//	       -skew 1.1 -loss 0.01 -channels 4 -swap 4096
//
//	askgen -scenario flash-crowd -out flash.askt
//	asksim -replay flash.askt          # timed replay on the sim clock
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// writeSnapshot writes one exporter's output to path ("-" = stdout).
func writeSnapshot(path string, write func(w io.Writer) error) {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := write(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func main() {
	var (
		hosts    = flag.Int("hosts", 4, "servers in the rack (receiver is host 0)")
		senders  = flag.Int("senders", 3, "sending hosts (1..senders)")
		tuples   = flag.Int64("tuples", 500_000, "tuples per sender")
		distinct = flag.Int("distinct", 8192, "distinct keys per sender")
		skew     = flag.Float64("skew", 0, "Zipf exponent (0 = uniform)")
		loss     = flag.Float64("loss", 0, "per-link loss probability")
		dup      = flag.Float64("dup", 0, "per-link duplication probability")
		channels = flag.Int("channels", 4, "data channels per daemon")
		swap     = flag.Int("swap", 4096, "shadow-copy swap threshold (0 = off)")
		rows     = flag.Int("rows", 0, "switch region rows (0 = default)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		verify   = flag.Bool("verify", true, "check the result against a host-computed reference")
		trace    = flag.String("trace", "", "replay a TSV trace (from askgen) instead of generating (split round-robin across senders)")
		replay   = flag.String("replay", "", "replay a timed trace (askgen -scenario; v1 TSV also accepted) on the sim clock: tuples enter the senders at their recorded arrival offsets")
		layout   = flag.Bool("layout", false, "print the switch pipeline layout and exit")
		telem    = flag.Bool("telemetry", false, "enable the cluster telemetry stack and print the metric report")
		promOut  = flag.String("prom", "", "write a Prometheus text snapshot to this file ('-' = stdout; implies -telemetry)")
		jsonOut  = flag.String("json", "", "write a JSON telemetry snapshot (metrics, series, trace events) to this file ('-' = stdout; implies -telemetry)")

		topology = flag.String("topology", "rack", "deployment: rack (single switch) or fattree (spine/leaf fabric)")
		spines   = flag.Int("spines", 2, "fat-tree spine switches (topology=fattree)")
		leaves   = flag.Int("leaves", 3, "fat-tree leaf switches; -hosts is then hosts per leaf (topology=fattree)")
		tenants  = flag.Int("tenants", 0, "tenants sharing the fat-tree, one task each, equal weights (0 = untenanted; topology=fattree)")
		shards   = flag.Int("shards", 0, "parallel event-loop shards; <= 1 runs the serial scheduler, and topologies too small to cut (rack, 1 rack/leaf) always do (DESIGN.md \"Parallel DES\")")

		soak        = flag.Bool("soak", false, "run the chaos soak harness instead of a single task (honors -topology)")
		soakRuns    = flag.Int("soak.runs", 1, "consecutive soak seeds to run (soak.seed, soak.seed+1, ...)")
		soakSeed    = flag.Int64("soak.seed", 1, "soak seed (drives workload, schedule, and fault RNG)")
		soakEvents  = flag.Int("soak.events", 6, "fault events per soak schedule")
		soakSenders = flag.Int("soak.senders", 2, "sending hosts in the soak cluster (topology=rack)")
		soakTuples  = flag.Int64("soak.tuples", 0, "tuples per sender in the soak workload (0 = topology default)")
		soakCorrupt = flag.Float64("soak.corrupt", 1e-3, "baseline per-link corruption probability during the soak")
		soakBreak   = flag.Bool("soak.break-checksums", false, "disable checksum verification (fault hook) to demo harness detection (topology=rack)")
		soakSpines  = flag.Int("soak.spines", 0, "fat-tree soak spine switches (0 = default 2; topology=fattree)")
		soakLeaves  = flag.Int("soak.leaves", 0, "fat-tree soak leaf switches (0 = default 3; topology=fattree)")
		soakShards  = flag.Int("soak.shards", 0, "run the fat-tree soak on the parallel scheduler with this many shards (0/1 = serial; topology=fattree)")
	)
	flag.Parse()
	if *promOut != "" || *jsonOut != "" {
		*telem = true
	}
	if *soak {
		runSoak(soakFlags{
			Topology: *topology, Runs: *soakRuns, Seed: *soakSeed,
			Events: *soakEvents, Senders: *soakSenders, Tuples: *soakTuples,
			Corrupt: *soakCorrupt, BreakChecksums: *soakBreak,
			Spines: *soakSpines, Leaves: *soakLeaves, Shards: *soakShards,
		})
		return
	}

	switch *topology {
	case "rack":
	case "fattree":
		runFatTree(fatTreeFlags{
			Spines: *spines, Leaves: *leaves, HostsPerLeaf: *hosts,
			Tenants: *tenants, Tuples: *tuples, Distinct: *distinct,
			Skew: *skew, Rows: *rows, Seed: *seed, Verify: *verify,
			Telemetry: *telem, Shards: *shards,
		})
		return
	default:
		fmt.Fprintf(os.Stderr, "asksim: unknown -topology %q (rack or fattree)\n", *topology)
		os.Exit(1)
	}

	if *senders >= *hosts {
		fmt.Fprintln(os.Stderr, "asksim: need senders < hosts (host 0 is the receiver)")
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.DataChannels = *channels
	cfg.SwapThreshold = *swap
	cfg.ShadowCopy = *swap > 0
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = *loss
	link.Fault.DupProb = *dup

	cl, err := ask.NewCluster(ask.Options{
		Hosts: *hosts, Config: cfg, Link: link, Seed: *seed,
		Telemetry: telemetry.Config{Enabled: *telem},
		Shards:    *shards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *layout {
		fmt.Print(cl.Switch.Pipeline().Describe())
		return
	}

	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum, Rows: *rows}
	streams := make(map[core.HostID]core.Stream)
	timed := make(map[core.HostID]core.TimedStream)
	want := make(core.Result)
	var total int64
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		hdr, tkvs, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if hdr.Scenario != "" {
			fmt.Printf("replaying scenario %q (trace v%d, seed %d, %d records)\n",
				hdr.Scenario, hdr.Version, hdr.Seed, hdr.Records)
		}
		total = int64(len(tkvs))
		parts := workload.SplitTimedRoundRobin(tkvs, *senders)
		for i := 1; i <= *senders; i++ {
			h := core.HostID(i)
			spec.Senders = append(spec.Senders, h)
			timed[h] = core.SliceTimedStream(parts[i-1])
			for _, tkv := range parts[i-1] {
				want.MergeKV(tkv.KV, core.OpSum)
			}
		}
	} else if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		kvs, err := workload.ReadTSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total = int64(len(kvs))
		parts := workload.SplitRoundRobin(kvs, *senders)
		for i := 1; i <= *senders; i++ {
			h := core.HostID(i)
			spec.Senders = append(spec.Senders, h)
			streams[h] = core.SliceStream(parts[i-1])
			want.Merge(core.Reference(core.OpSum, parts[i-1]), core.OpSum)
		}
	} else {
		total = *tuples * int64(*senders)
		for i := 1; i <= *senders; i++ {
			h := core.HostID(i)
			spec.Senders = append(spec.Senders, h)
			w := workload.Spec{
				Name: "cli", Distinct: *distinct, Tuples: *tuples,
				Skew: *skew, Seed: *seed + int64(i),
				KeyLens: workload.NaturalLanguage(0),
			}
			streams[h] = w.Stream()
			want.Merge(w.Reference(core.OpSum), core.OpSum)
		}
	}

	var res *ask.TaskResult
	if len(timed) > 0 {
		res, err = cl.AggregateTimed(spec, timed)
	} else {
		res, err = cl.Aggregate(spec, streams)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *verify {
		if !res.Result.Equal(want) {
			fmt.Fprintf(os.Stderr, "asksim: RESULT MISMATCH: %s\n", res.Result.Diff(want, 10))
			os.Exit(1)
		}
		fmt.Println("result verified exact against host-computed reference ✓")
	}

	el := time.Duration(res.Elapsed)
	fmt.Printf("\ntask completed in %v (virtual time)\n", el)
	fmt.Printf("  distinct result keys:  %d\n", len(res.Result))
	fmt.Printf("  aggregation rate:      %.1f M tuples/s\n", float64(total)/el.Seconds()/1e6)

	sw := res.Switch
	fmt.Printf("\nswitch:\n")
	fmt.Printf("  tuples aggregated:     %d / %d eligible (%.2f%%)\n",
		sw.TuplesAggregated, sw.TuplesIn, 100*sw.AggregatedTupleRatio())
	fmt.Printf("  packets fully ACKed:   %d / %d (%.2f%%)\n",
		sw.AckedPackets, sw.DataPackets, 100*sw.AckedPacketRatio())
	gs := cl.Switch.Stats()
	fmt.Printf("  dup pkts / stale pkts: %d / %d\n", gs.DupPackets, gs.StaleDropped)
	fmt.Printf("  shadow-copy swaps:     %d\n", gs.Swaps)

	fmt.Printf("\nreceiver (host 0):\n")
	fmt.Printf("  residue tuples:        %d\n", res.Recv.ResidueTuples)
	fmt.Printf("  long-key tuples:       %d\n", res.Recv.LongTuples)
	fmt.Printf("  switch entries merged: %d\n", res.Recv.SwitchEntries)
	fmt.Printf("  completed swaps:       %d\n", res.Recv.Swaps)

	fmt.Printf("\nnetwork:\n")
	for i := 1; i <= *senders; i++ {
		up := cl.Net.Uplink(core.HostID(i)).Stats()
		fmt.Printf("  host %d uplink:        %.2f Gbps wire, %.2f Gbps goodput, %d frames (%d dropped)\n",
			i, stats.Gbps(up.TxWireBytes, el), stats.Gbps(up.TxGoodBytes, el), up.TxFrames, up.Dropped)
	}
	down := cl.Net.Downlink(0).Stats()
	fmt.Printf("  receiver downlink:    %.2f Gbps wire (%d frames)\n", stats.Gbps(down.TxWireBytes, el), down.TxFrames)

	if *telem {
		if *promOut != "" {
			writeSnapshot(*promOut, func(w io.Writer) error {
				return telemetry.WritePrometheus(w, cl.Tel.Registry)
			})
		}
		if *jsonOut != "" {
			writeSnapshot(*jsonOut, cl.Tel.WriteJSON)
		}
		if *promOut == "" && *jsonOut == "" {
			fmt.Println()
			fmt.Println(telemetry.Report(cl.Tel.Registry).String())
			if tr := cl.Tel.Tracer; tr != nil {
				fmt.Printf("trace: %d events captured (%d dropped)\n", len(tr.Events()), tr.Dropped())
			}
		}
	}
}
