// Command askgen generates and inspects the key-value stream workloads used
// throughout the evaluation, and records corpus scenarios to timed traces.
//
// Determinism contract: the -seed flag pins every random choice the
// generator makes (key order, values, arrival times). The same flags with
// the same seed always produce byte-identical output — traces are safe to
// regenerate instead of archive, and a seed in a bug report reproduces the
// exact stream. Corpus scenarios (-scenario) carry their own pinned seed;
// -seed overrides it when nonzero.
//
// Examples:
//
//	askgen -dataset yelp -tuples 100000 -out trace.tsv   # write a v1 trace
//	askgen -dataset yelp -tuples 1000000 -stats          # summarize skew/lengths
//	askgen -distinct 4096 -skew 1.2 -order hot -stats    # synthetic Zipf
//	askgen -list-scenarios                               # corpus registry
//	askgen -scenario flash-crowd -out flash.askt         # record a timed v2 trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "corpus stand-in (yelp, NG, BAC, LMDB); empty = synthetic")
		distinct = flag.Int("distinct", 8192, "distinct keys (synthetic)")
		skew     = flag.Float64("skew", 0, "Zipf exponent (synthetic; 0 = uniform)")
		order    = flag.String("order", "shuffled", "arrival order: shuffled, hot, cold")
		tuples   = flag.Int64("tuples", 100_000, "stream length")
		seed     = flag.Int64("seed", 1, "generator seed: same flags + same seed = byte-identical output")
		out      = flag.String("out", "", "write the trace to this file instead of stdout")
		show     = flag.Bool("stats", false, "print stream statistics instead of a trace")

		scen     = flag.String("scenario", "", "record a corpus scenario (timed v2 trace; see -list-scenarios)")
		scenSeed = flag.Int64("scenario-seed", 0, "override the scenario's pinned seed (0 = keep)")
		list     = flag.Bool("list-scenarios", false, "list the scenario corpus and exit")
	)
	flag.Parse()
	// -tuples has a non-zero default; a scenario keeps its own length
	// unless the flag was given explicitly.
	scenTuples := int64(0)
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tuples" {
			scenTuples = *tuples
		}
	})

	if *list {
		listScenarios(os.Stdout)
		return
	}
	if *scen != "" {
		n, err := writeOut(*out, func(w io.Writer) (int64, error) {
			return recordScenario(w, *scen, scenTuples, *scenSeed)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "askgen:", err)
			os.Exit(1)
		}
		if *out != "" {
			fmt.Printf("recorded %d timed tuples of scenario %q to %s\n", n, *scen, *out)
		}
		return
	}

	var spec workload.Spec
	if *dataset != "" {
		spec = workload.Dataset(*dataset, *tuples, *seed)
	} else {
		var o workload.Order
		switch *order {
		case "shuffled":
			o = workload.Shuffled
		case "hot":
			o = workload.HotFirst
		case "cold":
			o = workload.ColdFirst
		default:
			fmt.Fprintf(os.Stderr, "askgen: unknown order %q\n", *order)
			os.Exit(1)
		}
		spec = workload.Zipf(*distinct, *tuples, *skew, o, *seed)
		spec.KeyLens = workload.NaturalLanguage(0)
	}

	switch {
	case *show:
		printStats(spec)
	default:
		n, err := writeOut(*out, func(w io.Writer) (int64, error) {
			return writeTSV(w, spec)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "askgen:", err)
			os.Exit(1)
		}
		if *out != "" {
			fmt.Printf("wrote %d tuples to %s\n", n, *out)
		}
	}
}

// writeOut runs write against path (empty = stdout) through one buffered
// writer.
func writeOut(path string, write func(io.Writer) (int64, error)) (int64, error) {
	out := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	n, err := write(w)
	if err != nil {
		return n, err
	}
	return n, w.Flush()
}

// recordScenario resolves a corpus scenario and streams it as a v2 timed
// trace. tuples > 0 rescales the stream; seed != 0 overrides the pinned
// seed (both are stamped into the header, so a recorded trace names its
// exact generator).
func recordScenario(w io.Writer, name string, tuples, seed int64) (int64, error) {
	s, err := scenario.ByName(name)
	if err != nil {
		return 0, err
	}
	if tuples > 0 {
		s = s.WithTuples(tuples)
	}
	if seed != 0 {
		s = s.WithSeed(seed)
	}
	return workload.WriteTimedTrace(w, s.Header(), s.TimedStream())
}

func listScenarios(w io.Writer) {
	fmt.Fprintln(w, "Scenario corpus:")
	for _, s := range scenario.All() {
		fmt.Fprintf(w, "  %-22s %s\n", s.Name, s.Desc)
		fmt.Fprintf(w, "  %-22s   stresses: %s\n", "", s.Stressor)
	}
	fmt.Fprintln(w, "\nRecord one with: askgen -scenario <name> -out <file>")
}

func emit(spec workload.Spec, f func(core.KV)) {
	s := spec.Stream()
	for {
		kv, ok := s()
		if !ok {
			return
		}
		f(kv)
	}
}

// writeTSV writes the classic v1 trace: key<TAB>value, no header.
func writeTSV(w io.Writer, spec workload.Spec) (int64, error) {
	var n int64
	var err error
	emit(spec, func(kv core.KV) {
		if err == nil {
			_, err = fmt.Fprintf(w, "%s\t%d\n", kv.Key, kv.Val)
			n++
		}
	})
	return n, err
}

func printStats(spec workload.Spec) {
	counts := make(map[string]int64)
	var lens stats.CDF
	emit(spec, func(kv core.KV) {
		counts[kv.Key]++
		lens.Add(float64(len(kv.Key)))
	})
	freqs := make([]int64, 0, len(counts))
	var total int64
	for _, c := range counts {
		freqs = append(freqs, c)
		total += c
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	topMass := func(n int) float64 {
		var m int64
		for i := 0; i < n && i < len(freqs); i++ {
			m += freqs[i]
		}
		return 100 * float64(m) / float64(total)
	}
	fmt.Printf("workload %q: %d tuples, %d distinct keys\n", spec.Name, total, len(counts))
	fmt.Printf("  hottest key share:    %.2f%%\n", topMass(1))
	fmt.Printf("  top-10 key share:     %.2f%%\n", topMass(10))
	fmt.Printf("  top-100 key share:    %.2f%%\n", topMass(100))
	fmt.Printf("  key length mean/p50/p90: %.1f / %.0f / %.0f bytes\n",
		lens.Mean(), lens.Quantile(0.5), lens.Quantile(0.9))
	short, medium, long := 0.0, 0.0, 0.0
	for l, n := 0.0, lens.N(); l <= 64; l++ {
		frac := lens.At(l) - lens.At(l-1)
		switch {
		case l <= 4:
			short += frac
		case l <= 8:
			medium += frac
		default:
			long += frac
		}
		_ = n
	}
	fmt.Printf("  length classes (default config): short %.1f%%, medium %.1f%%, long %.1f%%\n",
		100*short, 100*medium, 100*long)
}
