// Command askgen generates and inspects the key-value stream workloads used
// throughout the evaluation.
//
// Examples:
//
//	askgen -dataset yelp -tuples 100000 -out trace.tsv   # write a trace
//	askgen -dataset yelp -tuples 1000000 -stats          # summarize skew/lengths
//	askgen -distinct 4096 -skew 1.2 -order hot -stats    # synthetic Zipf
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "corpus stand-in (yelp, NG, BAC, LMDB); empty = synthetic")
		distinct = flag.Int("distinct", 8192, "distinct keys (synthetic)")
		skew     = flag.Float64("skew", 0, "Zipf exponent (synthetic; 0 = uniform)")
		order    = flag.String("order", "shuffled", "arrival order: shuffled, hot, cold")
		tuples   = flag.Int64("tuples", 100_000, "stream length")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "write the trace to this file (TSV: key<TAB>value)")
		show     = flag.Bool("stats", false, "print stream statistics instead of a trace")
	)
	flag.Parse()

	var spec workload.Spec
	if *dataset != "" {
		spec = workload.Dataset(*dataset, *tuples, *seed)
	} else {
		var o workload.Order
		switch *order {
		case "shuffled":
			o = workload.Shuffled
		case "hot":
			o = workload.HotFirst
		case "cold":
			o = workload.ColdFirst
		default:
			fmt.Fprintf(os.Stderr, "askgen: unknown order %q\n", *order)
			os.Exit(1)
		}
		spec = workload.Zipf(*distinct, *tuples, *skew, o, *seed)
		spec.KeyLens = workload.NaturalLanguage(0)
	}

	switch {
	case *show:
		printStats(spec)
	case *out != "":
		if err := writeTrace(spec, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d tuples to %s\n", *tuples, *out)
	default:
		// Default: trace to stdout.
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		emit(spec, func(kv core.KV) { fmt.Fprintf(w, "%s\t%d\n", kv.Key, kv.Val) })
	}
}

func emit(spec workload.Spec, f func(core.KV)) {
	s := spec.Stream()
	for {
		kv, ok := s()
		if !ok {
			return
		}
		f(kv)
	}
}

func writeTrace(spec workload.Spec, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	emit(spec, func(kv core.KV) { fmt.Fprintf(w, "%s\t%d\n", kv.Key, kv.Val) })
	return w.Flush()
}

func printStats(spec workload.Spec) {
	counts := make(map[string]int64)
	var lens stats.CDF
	emit(spec, func(kv core.KV) {
		counts[kv.Key]++
		lens.Add(float64(len(kv.Key)))
	})
	freqs := make([]int64, 0, len(counts))
	var total int64
	for _, c := range counts {
		freqs = append(freqs, c)
		total += c
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	topMass := func(n int) float64 {
		var m int64
		for i := 0; i < n && i < len(freqs); i++ {
			m += freqs[i]
		}
		return 100 * float64(m) / float64(total)
	}
	fmt.Printf("workload %q: %d tuples, %d distinct keys\n", spec.Name, total, len(counts))
	fmt.Printf("  hottest key share:    %.2f%%\n", topMass(1))
	fmt.Printf("  top-10 key share:     %.2f%%\n", topMass(10))
	fmt.Printf("  top-100 key share:    %.2f%%\n", topMass(100))
	fmt.Printf("  key length mean/p50/p90: %.1f / %.0f / %.0f bytes\n",
		lens.Mean(), lens.Quantile(0.5), lens.Quantile(0.9))
	short, medium, long := 0.0, 0.0, 0.0
	for l, n := 0.0, lens.N(); l <= 64; l++ {
		frac := lens.At(l) - lens.At(l-1)
		switch {
		case l <= 4:
			short += frac
		case l <= 8:
			medium += frac
		default:
			long += frac
		}
		_ = n
	}
	fmt.Printf("  length classes (default config): short %.1f%%, medium %.1f%%, long %.1f%%\n",
		100*short, 100*medium, 100*long)
}
