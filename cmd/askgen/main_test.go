package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// TestSeedReproducibility locks askgen's determinism contract: the same
// flags with the same seed produce byte-identical output, for both the
// classic TSV path and scenario recording.
func TestSeedReproducibility(t *testing.T) {
	gen := func(seed int64) []byte {
		spec := workload.Zipf(512, 2_000, 1.1, workload.Shuffled, seed)
		spec.KeyLens = workload.NaturalLanguage(0)
		var buf bytes.Buffer
		if _, err := writeTSV(&buf, spec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(gen(7), gen(7)) {
		t.Error("same seed produced different TSV traces")
	}
	if bytes.Equal(gen(7), gen(8)) {
		t.Error("different seeds produced identical TSV traces")
	}

	rec := func(seed int64) []byte {
		var buf bytes.Buffer
		if _, err := recordScenario(&buf, "flash-crowd", 2_000, seed); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(rec(7), rec(7)) {
		t.Error("same seed produced different scenario traces")
	}
	if bytes.Equal(rec(7), rec(8)) {
		t.Error("different seeds produced identical scenario traces")
	}
}

// TestRecordScenarioHeader checks a recorded trace round-trips with the
// right identity: scenario name, overridden seed and length, v2 format.
func TestRecordScenarioHeader(t *testing.T) {
	var buf bytes.Buffer
	n, err := recordScenario(&buf, "steady-poisson", 1_500, 99)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1_500 {
		t.Fatalf("recorded %d tuples, want 1500", n)
	}
	hdr, tkvs, err := workload.ReadTimedTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != workload.TraceVersion || hdr.Scenario != "steady-poisson" ||
		hdr.Seed != 99 || hdr.Records != 1_500 {
		t.Fatalf("header: %+v", hdr)
	}
	if int64(len(tkvs)) != 1_500 {
		t.Fatalf("decoded %d records", len(tkvs))
	}

	if _, err := recordScenario(&buf, "no-such-scenario", 0, 0); err == nil {
		t.Error("recordScenario accepted an unknown scenario")
	}
}

// TestListScenarios keeps the listing in sync with the registry.
func TestListScenarios(t *testing.T) {
	var buf bytes.Buffer
	listScenarios(&buf)
	for _, name := range scenario.Names() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("listing is missing scenario %q", name)
		}
	}
}
