// Command telemetrylint enforces the repo's metric-name hygiene:
//
//  1. every metric registered in non-test code matches the canonical
//     component.snake_case shape (at least two dot-separated lowercase
//     segments), and
//  2. every registered metric is documented in DESIGN.md's metric
//     inventory (a `name` entry inside the Observability section).
//
// It extracts names by parsing the source (go/ast), looking for calls to
// Counter/Gauge/Histogram/GaugeFunc whose first argument is a string
// literal, so adding an instrument without documenting it fails `make
// telemetry-lint` (and CI). Dynamically-built names (e.g. hostd.slot_fill's
// label values) are still covered because the metric *name* stays literal.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRE      = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)
	registrars  = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "GaugeFunc": true}
	docMetricRE = regexp.MustCompile("`([a-z][a-z0-9_]*(?:\\.[a-z][a-z0-9_]*)+)`")
)

// collect returns metric name -> first "file:line" registering it.
func collect(root string) (map[string]string, error) {
	found := make(map[string]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || path == filepath.Join(root, "cmd", "telemetrylint") {
				return filepath.SkipDir
			}
			// The telemetry package itself defines the registrar methods;
			// its own sources register nothing.
			if path == filepath.Join(root, "internal", "telemetry") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrars[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.Contains(name, ".") {
				return true
			}
			if _, seen := found[name]; !seen {
				pos := fset.Position(lit.Pos())
				rel, _ := filepath.Rel(root, pos.Filename)
				found[name] = fmt.Sprintf("%s:%d", rel, pos.Line)
			}
			return true
		})
		return nil
	})
	return found, err
}

// documented returns the set of `metric.name` spans in DESIGN.md's
// Observability section.
func documented(root string) (map[string]bool, error) {
	b, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return nil, err
	}
	text := string(b)
	if i := strings.Index(text, "## Observability"); i >= 0 {
		text = text[i:]
		if j := strings.Index(text[1:], "\n## "); j >= 0 {
			text = text[:j+1]
		}
	} else {
		return nil, fmt.Errorf("DESIGN.md has no \"## Observability\" section")
	}
	docs := make(map[string]bool)
	for _, m := range docMetricRE.FindAllStringSubmatch(text, -1) {
		docs[m[1]] = true
	}
	return docs, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	metrics, err := collect(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetrylint:", err)
		os.Exit(1)
	}
	docs, err := documented(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetrylint:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	bad := 0
	for _, n := range names {
		switch {
		case !nameRE.MatchString(n):
			fmt.Printf("%s: metric %q is not component.snake_case\n", metrics[n], n)
			bad++
		case !docs[n]:
			fmt.Printf("%s: metric %q is not documented in DESIGN.md's Observability section\n", metrics[n], n)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("telemetrylint: %d problem(s) across %d registered metric(s)\n", bad, len(names))
		os.Exit(1)
	}
	fmt.Printf("telemetrylint: %d metric(s) registered, all well-formed and documented\n", len(names))
}
