package repro

// The benchmark harness: one Benchmark per table/figure of the paper's
// evaluation (§5), each running the benchmark-scale preset and printing the
// regenerated rows, plus ablation and micro benchmarks on the core data
// structures. Run everything with
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks are macro-benchmarks: one iteration runs the whole
// experiment on virtual time and reports wall seconds per run; the printed
// tables are the reproduction artifact (collected in EXPERIMENTS.md).

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// benchExperiment runs one registry experiment at benchmark scale and
// prints its tables on the first iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	r, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	experiments.ResetPeakAKV()
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		tables, err = r.Full()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Peak simulated aggregation rate (virtual-time tuples/s) observed by
	// the experiment — recorded alongside the wall-clock numbers so
	// BENCH_*.json tracks simulated throughput, not just harness speed.
	if rate := experiments.PeakAKV(); rate > 0 {
		b.ReportMetric(rate, "sim-AKV/s")
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
}

// BenchmarkFig3 regenerates Fig. 3: single-machine AKV/s for vanilla Spark,
// the strawman single-tuple INA, and multi-key ASK.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig7 regenerates Fig. 7: JCT and CPU of ASK data channels vs the
// PreAggr host-only baseline.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable1 regenerates Table 1: traffic reduction per corpus.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig8a regenerates Fig. 8(a): goodput vs tuples per packet.
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

// BenchmarkFig8b regenerates Fig. 8(b): packet slot-fill CDF per dataset.
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }

// BenchmarkFig9 regenerates Fig. 9: switch absorption vs aggregator budget
// with and without hot-key agnostic prioritization.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10: WordCount JCT across shuffles.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11: mapper/reducer TCT breakdown.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12: distributed-training throughput.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13a regenerates Fig. 13(a): throughput/overhead vs channels.
func BenchmarkFig13a(b *testing.B) { benchExperiment(b, "fig13a") }

// BenchmarkFig13b regenerates Fig. 13(b): per-sender throughput scaling.
func BenchmarkFig13b(b *testing.B) { benchExperiment(b, "fig13b") }

// BenchmarkAblationSwap sweeps the shadow-copy swap threshold.
func BenchmarkAblationSwap(b *testing.B) { benchExperiment(b, "ablation-swap") }

// BenchmarkAblationWindow sweeps the sliding-window size under loss.
func BenchmarkAblationWindow(b *testing.B) { benchExperiment(b, "ablation-window") }

// BenchmarkAblationMedium sweeps the coalesced medium-key group width.
func BenchmarkAblationMedium(b *testing.B) { benchExperiment(b, "ablation-medium") }

// BenchmarkAblationCongestion compares the fixed reliability window with
// the AIMD congestion window under incast (§7).
func BenchmarkAblationCongestion(b *testing.B) { benchExperiment(b, "ablation-congestion") }

// BenchmarkMultiRack sweeps the §7 multi-rack deployment: switch absorption
// versus the fraction of cross-rack senders.
func BenchmarkMultiRack(b *testing.B) { benchExperiment(b, "multirack") }

// BenchmarkScenarios sweeps the committed scenario corpus: every named
// workload shape generated from its seed and replayed with arrival
// timestamps on the sim clock (pacing, lull flushes, bursts), reporting AA
// hit rate, shadow promotions, and goodput fraction per shape.
func BenchmarkScenarios(b *testing.B) { benchExperiment(b, "scenarios") }

// BenchmarkTenancy runs the multi-tenant fat-tree sweeps: weighted goodput
// fairness under admission control, and shared-pool AA utilization versus
// the single-tenant baseline.
func BenchmarkTenancy(b *testing.B) { benchExperiment(b, "tenancy") }

// BenchmarkScaling sweeps shard counts over the two-tier and fat-tree
// fabrics (DESIGN.md "Parallel DES"), verifying serial equivalence per
// point and reporting wall speedup/efficiency. The wall clock lives here —
// the experiments package is forbidden from reading real time — so the
// benchmark installs one for the duration of the run.
func BenchmarkScaling(b *testing.B) {
	start := time.Now()
	experiments.SetWallClock(func() time.Duration { return time.Since(start) })
	defer experiments.SetWallClock(nil)
	benchExperiment(b, "scaling")
}

// benchShards times one topology's scaling workload per shard count, so
// BENCH_*.json carries a wall-clock point for every (topology, shards)
// pair. On a single-CPU host the per-shard numbers are expected to be flat:
// lanes interleave on one core and the windows only add barrier overhead.
func benchShards(b *testing.B, topology string) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := experiments.ScalingPoint(topology, experiments.DefaultScaling(), shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiRackShards sweeps the two-tier fabric over shard counts.
func BenchmarkMultiRackShards(b *testing.B) { benchShards(b, "multirack") }

// BenchmarkFatTreeShards sweeps the spine/leaf fabric over shard counts.
func BenchmarkFatTreeShards(b *testing.B) { benchShards(b, "fattree") }
