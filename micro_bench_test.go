package repro

// Micro benchmarks on the core data structures and hot paths, including the
// compact-vs-naïve seen ablation (§3.3's 50% memory saving must not cost
// classification speed).

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/pisa"
	"repro/internal/window"
	"repro/internal/wire"
	"repro/internal/workload"
)

// BenchmarkAblationSeenCompact measures the W-bit compact receive window
// (set_bit/clr_bitc design, W bits of state).
func BenchmarkAblationSeenCompact(b *testing.B) {
	s := window.NewCompactSeen(256)
	b.ReportMetric(float64(s.Bits()), "state-bits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint32(i))
	}
}

// BenchmarkAblationSeenNaive measures the straightforward 2W-bit receive
// window (Eq. 5–7, twice the state).
func BenchmarkAblationSeenNaive(b *testing.B) {
	s := window.NewNaiveSeen(256)
	b.ReportMetric(float64(s.Bits()), "state-bits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint32(i))
	}
}

// BenchmarkHostDedup measures the host receiver's exact windowed dedup.
func BenchmarkHostDedup(b *testing.B) {
	d := window.NewHostDedup(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(uint32(i))
	}
}

// BenchmarkKeyPlacement measures the sender-assisted addressing: classify,
// partition, and pack one key.
func BenchmarkKeyPlacement(b *testing.B) {
	layout, err := keyspace.NewLayout(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = workload.Word(i, workload.NaturalLanguage(0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = layout.Place(keys[i&1023])
	}
}

// BenchmarkPipelinePass measures one full ASK-like PISA pass: a stale
// check, a seen update, 32 aggregator RMWs, and a PktState write.
func BenchmarkPipelinePass(b *testing.B) {
	p := pisa.NewPipeline(pisa.DefaultConfig())
	maxSeq := p.MustAddArray(0, "max_seq", 512, 32)
	seen := p.MustAddArray(1, "seen", 512*256, 1)
	var aas []*pisa.RegisterArray
	for i := 0; i < 32; i++ {
		aas = append(aas, p.MustAddArray(2+i/4, fmt.Sprintf("aa%d", i), 32768, 64))
	}
	pktState := p.MustAddArray(10, "pkt_state", 512*256, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := p.Begin()
		seq := uint32(i)
		maxSeq.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return uint64(seq), 0 })
		seen.RMW(ps, int(seq%256), func(cur uint64) (uint64, uint64) {
			next, _ := window.SeenUpdate(cur, (seq/256)&1 == 1)
			return next, 0
		})
		for j, aa := range aas {
			row := (i*31 + j*7) & 32767
			aa.RMW(ps, row, func(cur uint64) (uint64, uint64) { return cur + 1, 1 })
		}
		pktState.RMW(ps, int(seq%256), func(cur uint64) (uint64, uint64) { return 0xffffffff, 0 })
	}
}

// BenchmarkCodecMarshal measures encoding a full 32-slot data packet.
func BenchmarkCodecMarshal(b *testing.B) {
	c := wire.Codec{KPartBytes: 4}
	pkt := &wire.Packet{Type: wire.TypeData, Slots: make([]wire.Slot, 32)}
	for i := range pkt.Slots {
		pkt.Slots[i] = wire.Slot{KPart: wire.PackKPart([]byte("abcd"), 4), Val: int64(i)}
		pkt.Bitmap = pkt.Bitmap.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecUnmarshal measures decoding a full 32-slot data packet.
func BenchmarkCodecUnmarshal(b *testing.B) {
	c := wire.Codec{KPartBytes: 4}
	pkt := &wire.Packet{Type: wire.TypeData, Slots: make([]wire.Slot, 32)}
	for i := range pkt.Slots {
		pkt.Slots[i] = wire.Slot{KPart: wire.PackKPart([]byte("abcd"), 4), Val: int64(i)}
		pkt.Bitmap = pkt.Bitmap.Set(i)
	}
	buf, err := c.Marshal(pkt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadZipf measures the Zipf stream generator.
func BenchmarkWorkloadZipf(b *testing.B) {
	s := workload.Zipf(1<<16, int64(b.N)+1, 1.1, workload.Shuffled, 1).Stream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}
